#include "dsm/audit/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <map>

namespace dsm {
namespace {

// ---------------------------------------------------------------- emitting

void emit_kv(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64, key, v);
  out += buf;
}

void emit_kv_i(std::string& out, const char* key, std::int64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRId64, key, v);
  out += buf;
}

void emit_kv_s(std::string& out, const char* key, const char* v) {
  out += "\"";
  out += key;
  out += "\":\"";
  out += v;
  out += "\"";
}

const char* ev_kind_name(EvKind k) {
  switch (k) {
    case EvKind::kSend: return "send";
    case EvKind::kReceipt: return "receipt";
    case EvKind::kApply: return "apply";
    case EvKind::kReturn: return "return";
    case EvKind::kSkip: return "skip";
  }
  return "?";
}

// ----------------------------------------------------------------- parsing

/// Flat-object parser for the exact schema this module emits.  Values are
/// unsigned/signed integers, bare strings (no escapes needed — our strings
/// are identifiers) or arrays of unsigned integers.
class FlatJson {
 public:
  [[nodiscard]] static std::optional<FlatJson> parse(std::string_view line);

  [[nodiscard]] std::optional<std::uint64_t> u64(const std::string& key) const {
    const auto it = nums_.find(key);
    if (it == nums_.end()) return std::nullopt;
    return static_cast<std::uint64_t>(it->second);
  }
  [[nodiscard]] std::optional<std::int64_t> i64(const std::string& key) const {
    const auto it = nums_.find(key);
    if (it == nums_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::optional<std::string> str(const std::string& key) const {
    const auto it = strs_.find(key);
    if (it == strs_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::optional<std::vector<std::uint64_t>> arr(
      const std::string& key) const {
    const auto it = arrs_.find(key);
    if (it == arrs_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<std::string, std::int64_t> nums_;
  std::map<std::string, std::string> strs_;
  std::map<std::string, std::vector<std::uint64_t>> arrs_;
};

std::optional<FlatJson> FlatJson::parse(std::string_view line) {
  FlatJson out;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto expect = [&](char ch) {
    skip_ws();
    if (i >= line.size() || line[i] != ch) return false;
    ++i;
    return true;
  };
  const auto parse_string = [&]() -> std::optional<std::string> {
    if (!expect('"')) return std::nullopt;
    std::string s;
    while (i < line.size() && line[i] != '"') s.push_back(line[i++]);
    if (i >= line.size()) return std::nullopt;
    ++i;  // closing quote
    return s;
  };
  const auto parse_int = [&]() -> std::optional<std::int64_t> {
    skip_ws();
    const std::size_t start = i;
    if (i < line.size() && line[i] == '-') ++i;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') ++i;
    if (i == start) return std::nullopt;
    return std::strtoll(std::string(line.substr(start, i - start)).c_str(),
                        nullptr, 10);
  };

  if (!expect('{')) return std::nullopt;
  skip_ws();
  if (i < line.size() && line[i] == '}') return out;  // empty object
  while (true) {
    const auto key = parse_string();
    if (!key || !expect(':')) return std::nullopt;
    skip_ws();
    if (i >= line.size()) return std::nullopt;
    if (line[i] == '"') {
      const auto v = parse_string();
      if (!v) return std::nullopt;
      out.strs_[*key] = *v;
    } else if (line[i] == '[') {
      ++i;
      std::vector<std::uint64_t> values;
      skip_ws();
      if (i < line.size() && line[i] == ']') {
        ++i;
      } else {
        while (true) {
          const auto v = parse_int();
          if (!v || *v < 0) return std::nullopt;
          values.push_back(static_cast<std::uint64_t>(*v));
          skip_ws();
          if (i < line.size() && line[i] == ',') {
            ++i;
            continue;
          }
          if (!expect(']')) return std::nullopt;
          break;
        }
      }
      out.arrs_[*key] = std::move(values);
    } else {
      const auto v = parse_int();
      if (!v) return std::nullopt;
      out.nums_[*key] = *v;
    }
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (!expect('}')) return std::nullopt;
    break;
  }
  return out;
}

std::optional<EvKind> parse_ev_kind(const std::string& name) {
  if (name == "send") return EvKind::kSend;
  if (name == "receipt") return EvKind::kReceipt;
  if (name == "apply") return EvKind::kApply;
  if (name == "return") return EvKind::kReturn;
  if (name == "skip") return EvKind::kSkip;
  return std::nullopt;
}

}  // namespace

std::string export_trace_jsonl(const GlobalHistory& history,
                               const std::vector<RunEvent>& events) {
  std::string out;
  out += "{";
  emit_kv_s(out, "type", "meta");
  out += ",";
  emit_kv(out, "procs", history.n_procs());
  out += ",";
  emit_kv(out, "vars", history.n_vars());
  out += "}\n";

  // Operations in per-process program order (import re-appends them the same
  // way, so WriteIds are reproduced exactly).  Interleave round-robin by
  // program-order index to keep the flat order deterministic.
  std::size_t longest = 0;
  for (ProcessId p = 0; p < history.n_procs(); ++p) {
    longest = std::max(longest, history.local(p).size());
  }
  for (std::size_t idx = 0; idx < longest; ++idx) {
    for (ProcessId p = 0; p < history.n_procs(); ++p) {
      const auto ops = history.local(p);
      if (idx >= ops.size()) continue;
      const Operation& op = history.op(ops[idx]);
      out += "{";
      emit_kv_s(out, "type", "op");
      out += ",";
      emit_kv(out, "proc", op.proc);
      out += ",";
      emit_kv_s(out, "kind", op.is_write() ? "write" : "read");
      out += ",";
      emit_kv(out, "var", op.var);
      out += ",";
      emit_kv_i(out, "value", op.value);
      out += ",";
      emit_kv(out, "wproc", op.write_id.proc);
      out += ",";
      emit_kv(out, "wseq", op.write_id.seq);
      // Typed fields ride along only for non-register specs, so a classic
      // register trace is byte-for-byte what it was before the extension.
      if (op.spec != SpecId::kRegister) {
        out += ",";
        emit_kv(out, "spec", static_cast<std::uint64_t>(op.spec));
        out += ",";
        emit_kv(out, "opcode", static_cast<std::uint64_t>(op.opcode));
        out += ",";
        emit_kv_i(out, "arg2", op.arg2);
        if (op.is_read()) {
          out += ",\"visible\":[";
          for (std::size_t v = 0; v < op.visible.size(); ++v) {
            if (v != 0) out += ",";
            char buf[24];
            std::snprintf(buf, sizeof buf, "%" PRIu64, op.visible[v]);
            out += buf;
          }
          out += "]";
        }
      }
      out += "}\n";
    }
  }

  for (const auto& e : events) {
    out += "{";
    emit_kv_s(out, "type", "ev");
    out += ",";
    emit_kv(out, "order", e.order);
    out += ",";
    emit_kv(out, "time", e.time);
    out += ",";
    emit_kv(out, "at", e.at);
    out += ",";
    emit_kv_s(out, "kind", ev_kind_name(e.kind));
    out += ",";
    emit_kv(out, "wproc", e.write.proc);
    out += ",";
    emit_kv(out, "wseq", e.write.seq);
    out += ",";
    emit_kv(out, "oproc", e.other.proc);
    out += ",";
    emit_kv(out, "oseq", e.other.seq);
    out += ",";
    emit_kv(out, "var", e.var);
    out += ",";
    emit_kv_i(out, "value", e.value);
    out += ",";
    emit_kv(out, "delayed", e.delayed ? 1 : 0);
    out += ",\"clock\":[";
    const auto comps = e.clock.components();
    for (std::size_t i = 0; i < comps.size(); ++i) {
      if (i != 0) out += ",";
      char buf[24];
      std::snprintf(buf, sizeof buf, "%" PRIu64, comps[i]);
      out += buf;
    }
    out += "]}\n";
  }
  return out;
}

std::optional<ImportedRun> import_trace_jsonl(std::string_view text) {
  std::optional<GlobalHistory> history;
  std::vector<RunEvent> events;

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;

    const auto obj = FlatJson::parse(line);
    if (!obj) return std::nullopt;
    const auto type = obj->str("type");
    if (!type) return std::nullopt;

    if (*type == "meta") {
      const auto procs = obj->u64("procs");
      const auto vars = obj->u64("vars");
      if (!procs || !vars || *procs == 0 || *vars == 0) return std::nullopt;
      history.emplace(static_cast<std::size_t>(*procs),
                      static_cast<std::size_t>(*vars));
      continue;
    }
    if (!history) return std::nullopt;  // meta must come first

    if (*type == "op") {
      const auto proc = obj->u64("proc");
      const auto kind = obj->str("kind");
      const auto var = obj->u64("var");
      const auto value = obj->i64("value");
      const auto wproc = obj->u64("wproc");
      const auto wseq = obj->u64("wseq");
      if (!proc || !kind || !var || !value || !wproc || !wseq) {
        return std::nullopt;
      }
      // Typed fields are optional; their presence marks a non-register op.
      const auto spec_raw = obj->u64("spec");
      const auto opcode_raw = obj->u64("opcode");
      const auto arg2 = obj->i64("arg2");
      if (spec_raw.has_value() != opcode_raw.has_value() ||
          spec_raw.has_value() != arg2.has_value()) {
        return std::nullopt;
      }
      if (spec_raw &&
          (*spec_raw == 0 || *spec_raw > 0xff || *opcode_raw > 0xff ||
           !valid_spec_id(static_cast<std::uint8_t>(*spec_raw)) ||
           !valid_opcode(static_cast<std::uint8_t>(*opcode_raw)))) {
        return std::nullopt;
      }
      if (*kind == "write") {
        const WriteId id =
            spec_raw ? history->add_mutation(
                           static_cast<ProcessId>(*proc),
                           static_cast<VarId>(*var),
                           static_cast<SpecId>(*spec_raw),
                           static_cast<OpCode>(*opcode_raw), *value, *arg2)
                     : history->add_write(static_cast<ProcessId>(*proc),
                                          static_cast<VarId>(*var), *value);
        // Import must reproduce the exported ids (program order guarantees
        // it); a mismatch means the stream was reordered or corrupted.
        if (id.proc != *wproc || id.seq != *wseq) return std::nullopt;
      } else if (*kind == "read") {
        if (spec_raw) {
          auto visible = obj->arr("visible");
          if (!visible) return std::nullopt;
          // The exported value is the RETURNED value; the query operand rode
          // in arg2 (mirrors Operation's accessor layout).
          history->add_accessor(
              static_cast<ProcessId>(*proc), static_cast<VarId>(*var),
              static_cast<SpecId>(*spec_raw),
              static_cast<OpCode>(*opcode_raw), *arg2, *value,
              WriteId{static_cast<ProcessId>(*wproc), *wseq},
              std::move(*visible));
        } else {
          history->add_read(static_cast<ProcessId>(*proc),
                            static_cast<VarId>(*var), *value,
                            WriteId{static_cast<ProcessId>(*wproc), *wseq});
        }
      } else {
        return std::nullopt;
      }
      continue;
    }

    if (*type == "ev") {
      RunEvent e;
      const auto order = obj->u64("order");
      const auto time = obj->u64("time");
      const auto at = obj->u64("at");
      const auto kind = obj->str("kind");
      const auto wproc = obj->u64("wproc");
      const auto wseq = obj->u64("wseq");
      const auto oproc = obj->u64("oproc");
      const auto oseq = obj->u64("oseq");
      const auto var = obj->u64("var");
      const auto value = obj->i64("value");
      const auto delayed = obj->u64("delayed");
      const auto clock = obj->arr("clock");
      if (!order || !time || !at || !kind || !wproc || !wseq || !oproc ||
          !oseq || !var || !value || !delayed || !clock) {
        return std::nullopt;
      }
      const auto parsed_kind = parse_ev_kind(*kind);
      if (!parsed_kind) return std::nullopt;
      e.order = *order;
      e.time = *time;
      e.at = static_cast<ProcessId>(*at);
      e.kind = *parsed_kind;
      e.write = WriteId{static_cast<ProcessId>(*wproc), *wseq};
      e.other = WriteId{static_cast<ProcessId>(*oproc), *oseq};
      e.var = static_cast<VarId>(*var);
      e.value = *value;
      e.delayed = *delayed != 0;
      e.clock = VectorClock{std::move(*clock)};
      events.push_back(std::move(e));
      continue;
    }
    return std::nullopt;  // unknown type
  }

  if (!history) return std::nullopt;
  return ImportedRun{std::move(*history), std::move(events)};
}

}  // namespace dsm
