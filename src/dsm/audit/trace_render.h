// optcm — textual rendering of recorded runs, in the style of the paper's
// run figures (Figures 1, 2, 3 and 6).
//
// Two renderings:
//   * sequence lines — one "e <_k e' <_k …" line per process (Figures 1–2);
//     RunRecorder::sequence_str provides the raw line, render_sequences adds
//     the per-process framing.
//   * space-time table — one row per simulated instant, one column per
//     process, events annotated with the piggybacked vectors (Figures 3, 6:
//     the Write_co / FM-clock evolution is visible on each send/receipt).

#pragma once

#include <string>

#include "dsm/protocols/run_recorder.h"

namespace dsm {

struct TraceRenderOptions {
  bool show_clocks = true;   ///< annotate send/receipt with their vectors
  bool show_returns = true;  ///< include read return events
  bool show_time = true;     ///< left column of simulated timestamps
};

/// Per-process sequence lines ("p3: receipt_3(w2^1) <_3 apply_3(w2^1) …").
[[nodiscard]] std::string render_sequences(const RunRecorder& recorder);

/// Chronological space-time table of the whole run.
[[nodiscard]] std::string render_space_time(const RunRecorder& recorder,
                                            const TraceRenderOptions& opts = {});

}  // namespace dsm
