#include "dsm/audit/auditor.h"

#include <unordered_map>

#include "dsm/common/contracts.h"
#include "dsm/common/format.h"

namespace dsm {
namespace {

/// (process, write) -> event-order lookup key.
struct AtWrite {
  ProcessId at;
  WriteId w;
  friend bool operator==(const AtWrite&, const AtWrite&) = default;
};

struct AtWriteHash {
  std::size_t operator()(const AtWrite& k) const noexcept {
    return std::hash<WriteId>{}(k.w) ^ (std::size_t{k.at} * 0x9E3779B97F4A7C15ULL);
  }
};

using OrderMap = std::unordered_map<AtWrite, const RunEvent*, AtWriteHash>;

}  // namespace

std::uint64_t AuditReport::total_remote() const {
  std::uint64_t s = 0;
  for (const auto& p : per_proc) s += p.remote_messages;
  return s;
}
std::uint64_t AuditReport::total_delayed() const {
  std::uint64_t s = 0;
  for (const auto& p : per_proc) s += p.delayed;
  return s;
}
std::uint64_t AuditReport::total_necessary() const {
  std::uint64_t s = 0;
  for (const auto& p : per_proc) s += p.necessary;
  return s;
}
std::uint64_t AuditReport::total_unnecessary() const {
  std::uint64_t s = 0;
  for (const auto& p : per_proc) s += p.unnecessary;
  return s;
}

AuditReport OptimalityAuditor::audit(const RunRecorder& recorder) {
  return audit(recorder.history(), recorder.events());
}

std::uint64_t OptimalityAuditor::message_floor(
    const GlobalHistory& history, const SubscriptionMap& subscription) {
  std::uint64_t floor = 0;
  for (const OpRef wref : history.writes()) {
    const Operation& op = history.op(wref);
    for (const ProcessId q : subscription.subscribers(op.var)) {
      if (q != op.proc) ++floor;
    }
  }
  return floor;
}

AuditReport OptimalityAuditor::audit(const GlobalHistory& history,
                                     const std::vector<RunEvent>& events,
                                     const SubscriptionMap* subscription) {
  AuditReport report;
  const auto co = CoRelation::build(history);
  DSM_REQUIRE(co.has_value());

  const std::size_t n = history.n_procs();
  report.per_proc.resize(n);
  for (ProcessId p = 0; p < n; ++p) report.per_proc[p].proc = p;

  // Index first receipt and first apply/skip per (process, write).  A skip
  // counts as a logical apply at its instant (the write is "applied
  // immediately before" its superseder).
  OrderMap receipt_of, applied_of;
  for (const auto& e : events) {
    if (e.kind == EvKind::kReceipt) {
      receipt_of.try_emplace(AtWrite{e.at, e.write}, &e);
    } else if (e.kind == EvKind::kApply || e.kind == EvKind::kSkip) {
      applied_of.try_emplace(AtWrite{e.at, e.write}, &e);
    }
  }

  // ---- Definition 3 classification of every buffered message -------------
  for (const auto& e : events) {
    if (e.kind != EvKind::kReceipt) continue;
    auto& pa = report.per_proc[e.at];
    ++pa.remote_messages;

    const auto applied_it = applied_of.find(AtWrite{e.at, e.write});
    const RunEvent* applied_ev =
        applied_it == applied_of.end() ? nullptr : applied_it->second;

    // Was the message buffered?  Trust the protocol's own flag when the
    // write was applied; a write skipped after buffering has no apply event
    // with a flag, so infer from "anything happened in between".
    bool delayed = false;
    if (applied_ev != nullptr && applied_ev->kind == EvKind::kApply &&
        applied_ev->order > e.order) {
      delayed = applied_ev->delayed;
    } else if (applied_ev != nullptr && applied_ev->kind == EvKind::kSkip &&
               applied_ev->order > e.order + 1) {
      delayed = true;  // buffered, then superseded
    }
    if (!delayed) continue;

    ++pa.delayed;
    DelayIncident inc;
    inc.at = e.at;
    inc.write = e.write;
    inc.receipt_order = e.order;
    inc.receipt_time = e.time;
    if (applied_ev != nullptr) {
      inc.apply_order = applied_ev->order;
      inc.apply_time = applied_ev->time;
      inc.applied = applied_ev->kind == EvKind::kApply;
    }

    // Necessary iff some write in ↓(w, ↦co) had not been (logically) applied
    // at this process when the message arrived.
    const auto wref = history.find_write(e.write);
    DSM_REQUIRE(wref.has_value());
    for (const OpRef dep : co->write_causal_past(*wref)) {
      // A causal-past write on a variable this process does not subscribe
      // to never applies here; under subscription routing it cannot witness
      // a necessary delay (the dep matrix carries its obligation instead).
      if (subscription != nullptr &&
          !subscription->is_subscriber(history.op(dep).var, e.at)) {
        continue;
      }
      const WriteId dep_id = history.op(dep).write_id;
      const auto dep_applied = applied_of.find(AtWrite{e.at, dep_id});
      if (dep_applied == applied_of.end() ||
          dep_applied->second->order > e.order) {
        inc.necessary = true;
        inc.witness = dep_id;
        break;
      }
    }
    if (inc.necessary) {
      ++pa.necessary;
    } else {
      ++pa.unnecessary;
    }
    report.incidents.push_back(inc);
  }

  // ---- Safety: per-process apply order extends ↦co over writes -----------
  const auto writes = history.writes();
  for (ProcessId k = 0; k < n; ++k) {
    for (const OpRef a : writes) {
      for (const OpRef b : writes) {
        if (a == b || !co->precedes(a, b)) continue;
        const WriteId wa = history.op(a).write_id;
        const WriteId wb = history.op(b).write_id;
        const auto ea = applied_of.find(AtWrite{k, wa});
        const auto eb = applied_of.find(AtWrite{k, wb});
        if (ea == applied_of.end() || eb == applied_of.end()) continue;
        if (ea->second->order > eb->second->order) {
          report.safety_violations.push_back(
              "at " + proc_name(k) + ": " + to_string(wa) + " ↦co " +
              to_string(wb) + " but applied in the opposite order");
        }
      }
    }
  }

  // ---- Liveness: every write applied-or-skipped at every process ---------
  // (under a subscription map: at every subscriber of its variable).
  for (const OpRef wref : writes) {
    const WriteId w = history.op(wref).write_id;
    const VarId var = history.op(wref).var;
    for (ProcessId k = 0; k < n; ++k) {
      if (subscription != nullptr && !subscription->is_subscriber(var, k)) {
        continue;
      }
      if (applied_of.find(AtWrite{k, w}) == applied_of.end()) {
        report.liveness_violations.push_back(to_string(w) +
                                             " never applied at " +
                                             proc_name(k));
      }
    }
  }

  return report;
}

}  // namespace dsm
