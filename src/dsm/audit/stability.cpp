#include "dsm/audit/stability.h"

#include <algorithm>

#include "dsm/common/contracts.h"

namespace dsm {

StabilityTracker::StabilityTracker(std::size_t n_procs)
    : n_procs_(n_procs),
      applied_(n_procs, VectorClock(n_procs)),
      pending_(n_procs * n_procs),
      issued_(n_procs) {
  DSM_REQUIRE(n_procs >= 1);
}

void StabilityTracker::bump(ProcessId at, WriteId w) {
  DSM_REQUIRE(at < n_procs_);
  DSM_REQUIRE(w.proc < n_procs_);
  issued_[w.proc] = std::max(issued_[w.proc], w.seq);

  VectorClock& seen = applied_[at];
  auto& holes = pending_[at * n_procs_ + w.proc];
  if (w.seq == seen[w.proc] + 1) {
    seen[w.proc] = w.seq;
    // Absorb any out-of-prefix seqs that are now contiguous (can arise when
    // a writing-semantics jump reports the surviving write before the skip
    // events of the writes it superseded reach us, or vice versa).
    std::sort(holes.begin(), holes.end());
    while (!holes.empty() && holes.front() == seen[w.proc] + 1) {
      seen[w.proc] = holes.front();
      holes.erase(holes.begin());
    }
  } else if (w.seq > seen[w.proc]) {
    holes.push_back(w.seq);
  }
  // w.seq <= prefix: duplicate report; ignore.
}

void StabilityTracker::on_apply(ProcessId at, WriteId w, bool) {
  const std::scoped_lock lock(mu_);
  bump(at, w);
}

void StabilityTracker::on_skip(ProcessId at, WriteId w, WriteId) {
  const std::scoped_lock lock(mu_);
  bump(at, w);
}

VectorClock StabilityTracker::frontier_locked() const {
  VectorClock out = applied_[0];
  for (std::size_t k = 1; k < n_procs_; ++k) {
    for (std::size_t j = 0; j < n_procs_; ++j) {
      out[j] = std::min(out[j], applied_[k][j]);
    }
  }
  return out;
}

VectorClock StabilityTracker::frontier() const {
  const std::scoped_lock lock(mu_);
  return frontier_locked();
}

bool StabilityTracker::is_stable(WriteId w) const {
  DSM_REQUIRE(w.valid());
  return frontier()[w.proc] >= w.seq;
}

std::uint64_t StabilityTracker::unstable_count() const {
  const std::scoped_lock lock(mu_);
  const VectorClock f = frontier_locked();
  std::uint64_t count = 0;
  for (std::size_t j = 0; j < n_procs_; ++j) {
    count += issued_[j] - std::min(issued_[j], f[j]);
  }
  return count;
}

}  // namespace dsm
