// optcm — causal stability tracking.
//
// A write is STABLE once it has been applied (or, under writing semantics,
// logically applied via a skip) at every process: no future event anywhere
// can be ordered before it, so checkpoints may include it, buffers may drop
// bookkeeping about it, and late-joining tooling can treat it as settled.
// This is the standard "causal stability" notion from causal-broadcast
// systems, applied to the paper's apply events.
//
// StabilityTracker is a ProtocolObserver: feed it the same event stream as
// the recorder (use FanoutObserver to tee) and query the stable frontier —
// per issuing process, the largest sequence number S such that all of that
// process's writes 1..S are stable.  The tracker is deliberately
// protocol-agnostic: it watches apply/skip events only, so it works for every
// protocol in the library, in the simulator and on threads (it is
// internally locked, like the recorder).

#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "dsm/protocols/protocol.h"
#include "dsm/vc/vector_clock.h"

namespace dsm {

class StabilityTracker final : public ProtocolObserver {
 public:
  explicit StabilityTracker(std::size_t n_procs);

  // -- ProtocolObserver ------------------------------------------------------
  void on_apply(ProcessId at, WriteId w, bool delayed) override;
  void on_skip(ProcessId at, WriteId w, WriteId by) override;

  // -- queries ---------------------------------------------------------------
  /// frontier()[j] = S ⇔ p_j's writes 1..S are applied everywhere.
  [[nodiscard]] VectorClock frontier() const;

  /// True iff `w` is applied (or skipped) at every process.
  [[nodiscard]] bool is_stable(WriteId w) const;

  /// Number of writes known issued (max seq seen per process, summed) that
  /// are not yet stable — the "in flight causality" gauge.
  [[nodiscard]] std::uint64_t unstable_count() const;

 private:
  [[nodiscard]] VectorClock frontier_locked() const;  // requires mu_ held

  /// applied_[k][j] = highest prefix of p_j's writes applied at p_k.
  /// Tracking prefixes (not sets) is sound because every protocol here
  /// applies each sender's writes in sequence order at every process —
  /// the safety property the auditor independently verifies; skips fill
  /// prefix holes at the instant of the jump.
  void bump(ProcessId at, WriteId w);

  mutable std::mutex mu_;
  std::size_t n_procs_;
  std::vector<VectorClock> applied_;         // [observer process][issuer]
  std::vector<std::vector<SeqNo>> pending_;  // out-of-prefix seqs, per (at, issuer)
  VectorClock issued_;                       // max seq seen per issuer
};

/// Tees protocol events to several observers (recorder + tracker + …).
class FanoutObserver final : public ProtocolObserver {
 public:
  explicit FanoutObserver(std::vector<ProtocolObserver*> targets)
      : targets_(std::move(targets)) {}

  void on_send(ProcessId at, const WriteUpdate& m) override {
    for (auto* t : targets_) t->on_send(at, m);
  }
  void on_receipt(ProcessId at, const WriteUpdate& m) override {
    for (auto* t : targets_) t->on_receipt(at, m);
  }
  void on_apply(ProcessId at, WriteId w, bool delayed) override {
    for (auto* t : targets_) t->on_apply(at, w, delayed);
  }
  void on_return(ProcessId at, VarId x, Value v, WriteId from) override {
    for (auto* t : targets_) t->on_return(at, x, v, from);
  }
  void on_skip(ProcessId at, WriteId w, WriteId by) override {
    for (auto* t : targets_) t->on_skip(at, w, by);
  }

 private:
  std::vector<ProtocolObserver*> targets_;
};

}  // namespace dsm
