// optcm — enabling-event sets (paper Sections 3.3–3.6, Tables 1 and 2).
//
// For an apply event e = apply_k(w):
//   * X_co-safe(e)  = { apply_k(w') : w' ∈ ↓(w, ↦co) }          (Definition 4)
//   * X_P(e) for vector-condition protocols = { apply_k(w') : the piggybacked
//     vector of w counts w' }, i.e. w.clock[w'.proc] ≥ w'.seq.  For OptP the
//     piggybacked vector is Write_co, and Theorem 1 makes this set equal to
//     X_co-safe(e); for ANBKH it is the FM clock over sends, yielding
//     X_ANBKH(e) = { apply_k(w') : send(w') ∈ ↓(send(w), →) } — a superset,
//     and the gap is exactly the protocol's false causality.
//
// These functions regenerate the paper's Table 1 and Table 2 from real data
// (a history for the former; recorded send clocks for the latter).

#pragma once

#include <string>
#include <vector>

#include "dsm/history/co_relation.h"
#include "dsm/protocols/run_recorder.h"

namespace dsm {

/// The writes whose applies form X_co-safe(apply_k(w)) — independent of k,
/// as the paper's Table 1 shows (same set for every process).  Sorted by
/// (proc, seq) for stable printing.
[[nodiscard]] std::vector<WriteId> x_co_safe_writes(const CoRelation& co,
                                                    WriteId w);

/// The writes whose applies form X_P(apply_k(w)) for a protocol that
/// piggybacks `clock` on w's message, where clock[j] = seq of p_j's last
/// counted write.  Sorted by (proc, seq).
[[nodiscard]] std::vector<WriteId> x_protocol_writes(const VectorClock& clock,
                                                     WriteId w);

/// Looks up the send clock of `w` in a recorded event log.
[[nodiscard]] const VectorClock& send_clock_of(const std::vector<RunEvent>& events,
                                               WriteId w);

/// "{apply_k(w1^1), apply_k(w2^1)}" — the paper's table-cell notation.
[[nodiscard]] std::string enabling_set_str(const std::vector<WriteId>& writes,
                                           ProcessId k);

}  // namespace dsm
