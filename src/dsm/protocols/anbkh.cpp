#include "dsm/protocols/anbkh.h"

#include "dsm/common/contracts.h"

namespace dsm {

Anbkh::Anbkh(ProcessId self, std::size_t n_procs, std::size_t n_vars,
             Endpoint& endpoint, ProtocolObserver& observer,
             bool writing_semantics)
    : BufferingProtocol(self, n_procs, n_vars, endpoint, observer,
                        writing_semantics) {}

void Anbkh::write(VarId x, Value v) {
  DSM_REQUIRE(x < n_vars_);
  ++stats_.writes_issued;

  // The write send is the clock's relevant event: VC[self]++ then piggyback.
  // applied_ is bumped by apply_own_write below, so build the message clock
  // from the post-increment value first.
  const SeqNo seq = applied_[self_] + 1;

  VectorClock clock = applied_;
  clock[self_] = seq;

  WriteUpdate m;
  m.sender = self_;
  m.var = x;
  m.value = v;
  m.write_seq = seq;
  m.clock = clock;
  m.run = next_run(x, clock);
  stamp_typed(m);

  observer_->on_send(self_, m);
  endpoint_->broadcast(encode_payload(m));

  (void)apply_own_write(x, v, seq, clock);
}

ReadResult Anbkh::read(VarId x) {
  DSM_REQUIRE(x < n_vars_);
  ++stats_.reads_issued;
  // Reads are invisible to ANBKH's metadata: local, wait-free, no clock
  // activity.  (The protocol pays for that simplicity with false causality.)
  const ReadResult result = peek(x);
  observer_->on_return(self_, x, result.value, result.writer);
  return result;
}

void Anbkh::post_apply(const WriteUpdate& m, bool /*installed*/) {
  // The FM merge VC := max(VC, m.clock) is already subsumed by the apply
  // counter update: the enabling condition guarantees m.clock[t] ≤ VC[t] for
  // all t ≠ sender, and the sender component was just set to m.write_seq.
  for (ProcessId t = 0; t < n_procs_; ++t) {
    DSM_ENSURE(m.clock[t] <= applied_[t]);
  }
}

std::string Anbkh::name() const {
  return writing_semantics() ? "anbkh-ws" : "anbkh";
}

}  // namespace dsm
