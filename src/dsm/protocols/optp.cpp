#include "dsm/protocols/optp.h"

#include "dsm/common/contracts.h"

namespace dsm {

OptP::OptP(ProcessId self, std::size_t n_procs, std::size_t n_vars,
           Endpoint& endpoint, ProtocolObserver& observer,
           bool writing_semantics, std::size_t write_blob_size,
           bool convergent)
    : BufferingProtocol(self, n_procs, n_vars, endpoint, observer,
                        writing_semantics, convergent),
      write_co_(n_procs),
      last_write_on_(n_vars, VectorClock{n_procs}),
      write_blob_size_(write_blob_size) {}

const WriteUpdate& OptP::prepare_write(VarId x, Value v) {
  DSM_REQUIRE(x < n_vars_);
  ++stats_.writes_issued;

  // Fig. 4 line 1: track ↦po_i.
  const SeqNo seq = write_co_.tick(self_);

  WriteUpdate& m = outgoing_;
  m.sender = self_;
  m.var = x;
  m.value = v;
  m.write_seq = seq;
  m.clock = write_co_;  // copy-assign: reuses the component buffer
  m.run = next_run(x, write_co_);
  m.meta_only = false;
  m.blob.assign(write_blob_size_, static_cast<std::uint8_t>(v));
  stamp_typed(m);

  observer_->on_send(self_, m);
  return m;
}

void OptP::finish_write(const WriteUpdate& m) {
  // Fig. 4 lines 3–5: local apply event and bookkeeping.  In convergent
  // mode an own write can lose arbitration to an already-applied concurrent
  // write; LastWriteOn then stays with the winner so reads keep merging the
  // vector of the value they actually return.
  if (apply_own_write(m.var, m.value, m.write_seq, write_co_)) {
    last_write_on_[m.var] = write_co_;
  }
}

void OptP::write(VarId x, Value v) {
  const WriteUpdate& m = prepare_write(x, v);
  // Fig. 4 line 2: send event — one encode, one shared payload for all
  // n−1 receivers.
  endpoint_->broadcast(encode_payload(m));
  finish_write(m);
}

ReadResult OptP::read(VarId x) {
  DSM_REQUIRE(x < n_vars_);
  ++stats_.reads_issued;

  // Fig. 5 read line 1: incorporate the causal relations of the last write
  // applied to x_h.  This is the only place OptP learns foreign causality —
  // precisely the read-from relation ↦ro.
  write_co_.merge(last_write_on_[x]);

  const ReadResult result = peek(x);
  observer_->on_return(self_, x, result.value, result.writer);
  return result;
}

void OptP::post_apply(const WriteUpdate& m, bool installed) {
  // Fig. 5 sync-thread line 5: store w_u(x_h).Write_co — for the write whose
  // value the variable now holds.
  if (installed) last_write_on_[m.var] = m.clock;
}

void OptP::snapshot(ByteWriter& w) const {
  BufferingProtocol::snapshot(w);
  w.u64_vec(write_co_.components());
  w.u64(last_write_on_.size());
  for (const VectorClock& v : last_write_on_) w.u64_vec(v.components());
}

bool OptP::restore(ByteReader& r) {
  if (!BufferingProtocol::restore(r)) return false;
  auto write_co = r.u64_vec();
  if (!write_co || write_co->size() != n_procs_) return false;
  write_co_ = VectorClock{std::move(*write_co)};
  const auto count = r.u64();
  if (!count || *count != last_write_on_.size()) return false;
  for (VectorClock& v : last_write_on_) {
    auto components = r.u64_vec();
    if (!components || components->size() != n_procs_) return false;
    v = VectorClock{std::move(*components)};
  }
  return true;
}

const VectorClock& OptP::last_write_on(VarId x) const {
  DSM_REQUIRE(x < n_vars_);
  return last_write_on_[x];
}

std::string OptP::name() const {
  if (convergent()) return "optp-conv";
  return writing_semantics() ? "optp-ws" : "optp";
}

}  // namespace dsm
