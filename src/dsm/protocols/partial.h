// optcm — PartialOptP: OptP over partially replicated variables (after the
// paper's reference [14], Raynal–Singhal, "Exploiting Write Semantics in
// Implementing Partially Replicated Causal Objects").
//
// Design: *metadata-full, data-partial*.  Every write is still announced to
// every process — the Fig. 5 wait condition needs complete per-sender Apply
// counters, and [14]'s own protocols pay an equivalent control-plane cost —
// but only the variable's replicas receive the value and its payload blob;
// everyone else gets a metadata-only copy (a few bytes).  Consequences:
//
//   * safety/optimality are inherited verbatim: the enabling condition and
//     Write_co algebra are untouched (a metadata apply IS the apply event of
//     the paper's model; installing the value is a replica-local effect);
//   * reads and writes of a variable are restricted to its replicas
//     (enforced by contract — routing reads to remote replicas is an RPC
//     concern outside the paper's wait-free-read model);
//   * the data-plane saving is (1 − factor/n) of the blob traffic, measured
//     by bench/exp_partial.
//
// With ReplicationMap::full the protocol is byte-for-byte OptP.

#pragma once

#include <memory>

#include "dsm/protocols/optp.h"
#include "dsm/protocols/replication.h"

namespace dsm {

class PartialOptP final : public OptP {
 public:
  PartialOptP(ProcessId self, std::size_t n_procs, std::size_t n_vars,
              Endpoint& endpoint, ProtocolObserver& observer,
              std::shared_ptr<const ReplicationMap> replication,
              bool writing_semantics = false, std::size_t write_blob_size = 0);

  /// Requires self to be a replica of x.
  void write(VarId x, Value v) override;

  /// Requires self to be a replica of x.
  ReadResult read(VarId x) override;

  [[nodiscard]] std::string name() const override { return "optp-partial"; }

  [[nodiscard]] const ReplicationMap& replication() const noexcept {
    return *replication_;
  }

 private:
  std::shared_ptr<const ReplicationMap> replication_;
};

}  // namespace dsm
