// optcm — shared receive-side machinery for vector-condition protocols.
//
// OptP and ANBKH differ in *which* vector they piggyback and *when* they
// merge it (on reads vs. on applies) — the receive side is structurally
// identical: check an enabling condition against per-sender apply counters,
// apply immediately or buffer, and drain the buffer to a fixpoint after every
// apply (the paper's "synchronization thread", Fig. 5).  BufferingProtocol
// factors that machinery, including the optional writing-semantics extension
// (paper Section 3.6 / footnote 8):
//
//   * without writing semantics, a message from p_u carrying write_seq = s
//     applies when Apply[u] == s−1 and ∀t≠u : clock[t] ≤ Apply[t]
//     (exactly Fig. 5 line 2);
//   * with writing semantics, the sender marks each message with the length
//     `run` of the immediately preceding same-variable, same-foreign-clock
//     write run it supersedes, and the receiver relaxes the first conjunct to
//     Apply[u] ≥ s−1−run — superseded writes are "logically applied
//     immediately before" (skipped), which is sound because the run
//     construction guarantees no write on another variable lies ↦co-between
//     a skipped write and this one.

#pragma once

#include <span>
#include <vector>

#include "dsm/protocols/protocol.h"
#include "dsm/vc/vector_clock.h"

namespace dsm {

// In plain causal memory, concurrent writes to the same variable are
// installed in arrival order, so replicas may disagree forever (the model
// allows it).  With `convergent = true` the protocol adds last-writer-wins
// arbitration under a deterministic total order that extends ↦co —
// (sum(clock), writer): the clock-sum strictly grows along ↦co (Theorem 1),
// ties between concurrent writes break by writer id — so every replica ends
// at the same value per variable (the "causal+" strengthening popularized by
// COPS).  A write that loses arbitration still APPLIES (counters advance;
// safety/optimality untouched); only the value installation is suppressed.
class BufferingProtocol : public CausalProtocol {
 public:
  BufferingProtocol(ProcessId self, std::size_t n_procs, std::size_t n_vars,
                    Endpoint& endpoint, ProtocolObserver& observer,
                    bool writing_semantics, bool convergent = false);

  void on_message(ProcessId from, std::span<const std::uint8_t> bytes) final;

  [[nodiscard]] std::size_t pending_count() const final { return pending_.size(); }

  /// Apply counters: applied_[j] = number of p_j's writes applied here
  /// (the paper's Apply[1..n]; for j == self it equals writes issued).
  [[nodiscard]] const VectorClock& applied() const noexcept { return applied_; }

  [[nodiscard]] bool writing_semantics() const noexcept { return ws_; }

  void snapshot(ByteWriter& w) const override;
  [[nodiscard]] bool restore(ByteReader& r) override;

 protected:
  /// Fig. 5 line 2 (with the optional writing-semantics relaxation).
  [[nodiscard]] bool can_apply(const WriteUpdate& m) const;

  /// True iff the message's write was already superseded by a jump.
  [[nodiscard]] bool is_stale(const WriteUpdate& m) const;

  /// Enabling-set cardinality shortfall for `m` at this instant: how many
  /// apply events the Fig. 5 wait condition still needs before `m` can
  /// apply (sender-sequence gap beyond the superseded run, plus every
  /// foreign clock component ahead of Apply).  0 iff can_apply(m).
  [[nodiscard]] std::uint64_t enabling_deficit(const WriteUpdate& m) const;

  /// Perform the apply event: account skips, bump Apply[u], install the
  /// value, call post_apply(), notify the observer, then drain the buffer.
  void apply_update(const WriteUpdate& m, bool delayed);

  /// Protocol-specific apply side effect (OptP: LastWriteOn[h] := m.clock;
  /// ANBKH: nothing beyond the counter merge already performed).  `installed`
  /// is false when convergent arbitration suppressed the value — the clock
  /// bookkeeping for the variable must then stay with the winner.
  virtual void post_apply(const WriteUpdate& m, bool installed) = 0;

  /// Record the local apply of one of our own writes (write() helpers).
  /// Returns false when convergent arbitration suppressed the installation
  /// (an already-applied concurrent write outranks it).
  bool apply_own_write(VarId x, Value v, SeqNo seq, const VectorClock& clock);

  [[nodiscard]] bool convergent() const noexcept { return convergent_; }

  /// Sender-side run tracking for writing semantics: returns the run length
  /// to stamp on a message about to be sent, given the variable written and
  /// the foreign components of the clock being piggybacked.
  [[nodiscard]] std::uint64_t next_run(VarId x, const VectorClock& clock);

  VectorClock applied_;

 private:
  void drain();
  void purge_stale();
  void track_peak();

  /// Arbitration: install iff the incoming write outranks the variable's
  /// current holder under ((clock-sum, writer) — a total order extending
  /// ↦co).  Always true outside convergent mode.
  [[nodiscard]] bool wins_arbitration(VarId x, const VectorClock& clock,
                                      ProcessId writer);
  void record_winner(VarId x, const VectorClock& clock, ProcessId writer);

  std::vector<WriteUpdate> pending_;
  bool ws_;
  bool convergent_;
  /// Per variable: (clock-sum, writer) of the installed value's write.
  std::vector<std::pair<std::uint64_t, ProcessId>> lww_key_;

  // Writing-semantics sender state: the variable and foreign clock snapshot
  // of our previous outgoing write, plus the run length it carried.
  bool have_prev_write_ = false;
  VarId prev_var_ = 0;
  VectorClock prev_clock_;
  std::uint64_t prev_run_ = 0;
};

}  // namespace dsm
