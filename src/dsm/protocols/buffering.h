// optcm — shared receive-side machinery for vector-condition protocols.
//
// OptP and ANBKH differ in *which* vector they piggyback and *when* they
// merge it (on reads vs. on applies) — the receive side is structurally
// identical: check an enabling condition against per-sender apply counters,
// apply immediately or buffer, and drain the buffer to a fixpoint after every
// apply (the paper's "synchronization thread", Fig. 5).  BufferingProtocol
// factors that machinery, including the optional writing-semantics extension
// (paper Section 3.6 / footnote 8):
//
//   * without writing semantics, a message from p_u carrying write_seq = s
//     applies when Apply[u] == s−1 and ∀t≠u : clock[t] ≤ Apply[t]
//     (exactly Fig. 5 line 2);
//   * with writing semantics, the sender marks each message with the length
//     `run` of the immediately preceding same-variable, same-foreign-clock
//     write run it supersedes, and the receiver relaxes the first conjunct to
//     Apply[u] ≥ s−1−run — superseded writes are "logically applied
//     immediately before" (skipped), which is sound because the run
//     construction guarantees no write on another variable lies ↦co-between
//     a skipped write and this one.
//
// The buffer is dependency-indexed (docs/PERF.md): every blocked message is
// registered in a watch index under the FIRST apply counter that still fails
// its wait condition, so an apply re-examines only messages whose last
// missing enabling event may just have occurred — O(newly-enabled) work
// instead of the seed's restart-from-scratch linear rescan.  The drain runs
// as an iterative worklist (no apply→drain recursion), so arbitrarily deep
// enable chains cannot overflow the stack.  The seed's linear algorithm is
// retained verbatim behind set_reference_drain() as the differential-testing
// baseline; both engines produce byte-identical observer event sequences and
// ProtocolStats.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "dsm/protocols/protocol.h"
#include "dsm/vc/vector_clock.h"

namespace dsm {

// In plain causal memory, concurrent writes to the same variable are
// installed in arrival order, so replicas may disagree forever (the model
// allows it).  With `convergent = true` the protocol adds last-writer-wins
// arbitration under a deterministic total order that extends ↦co —
// (sum(clock), writer): the clock-sum strictly grows along ↦co (Theorem 1),
// ties between concurrent writes break by writer id — so every replica ends
// at the same value per variable (the "causal+" strengthening popularized by
// COPS).  A write that loses arbitration still APPLIES (counters advance;
// safety/optimality untouched); only the value installation is suppressed.
class BufferingProtocol : public CausalProtocol {
 public:
  BufferingProtocol(ProcessId self, std::size_t n_procs, std::size_t n_vars,
                    Endpoint& endpoint, ProtocolObserver& observer,
                    bool writing_semantics, bool convergent = false);

  void on_message(ProcessId from, std::span<const std::uint8_t> bytes) final;

  [[nodiscard]] std::size_t pending_count() const final;

  /// Apply counters: applied_[j] = number of p_j's writes applied here
  /// (the paper's Apply[1..n]; for j == self it equals writes issued).
  [[nodiscard]] const VectorClock& applied() const noexcept { return applied_; }

  [[nodiscard]] bool writing_semantics() const noexcept { return ws_; }

  /// Switch to the seed's O(|pending|²·n) linear drain — the differential
  /// baseline the indexed engine is tested against (and the "before" side of
  /// BENCH_core.json).  Precondition: the instance is fresh (no operations
  /// executed, nothing buffered).
  void set_reference_drain(bool on);
  [[nodiscard]] bool reference_drain() const noexcept { return reference_drain_; }

  void snapshot(ByteWriter& w) const override;
  [[nodiscard]] bool restore(ByteReader& r) override;

 protected:
  /// Fig. 5 line 2 (with the optional writing-semantics relaxation).
  [[nodiscard]] bool can_apply(const WriteUpdate& m) const;

  /// True iff the message's write was already superseded by a jump.
  [[nodiscard]] bool is_stale(const WriteUpdate& m) const;

  /// Enabling-set cardinality shortfall for `m` at this instant: how many
  /// apply events the Fig. 5 wait condition still needs before `m` can
  /// apply (sender-sequence gap beyond the superseded run, plus every
  /// foreign clock component ahead of Apply).  0 iff can_apply(m).
  [[nodiscard]] std::uint64_t enabling_deficit(const WriteUpdate& m) const;

  /// Perform the apply event: account skips, bump Apply[u], install the
  /// value, call post_apply(), notify the observer, then drain the buffer
  /// (iterative worklist; the reference engine recurses like the seed).
  void apply_update(const WriteUpdate& m, bool delayed);

  /// Protocol-specific apply side effect (OptP: LastWriteOn[h] := m.clock;
  /// ANBKH: nothing beyond the counter merge already performed).  `installed`
  /// is false when convergent arbitration suppressed the value — the clock
  /// bookkeeping for the variable must then stay with the winner.
  virtual void post_apply(const WriteUpdate& m, bool installed) = 0;

  /// Record the local apply of one of our own writes (write() helpers).
  /// Returns false when convergent arbitration suppressed the installation
  /// (an already-applied concurrent write outranks it).
  bool apply_own_write(VarId x, Value v, SeqNo seq, const VectorClock& clock);

  [[nodiscard]] bool convergent() const noexcept { return convergent_; }

  /// Sender-side run tracking for writing semantics: returns the run length
  /// to stamp on a message about to be sent, given the variable written and
  /// the foreign components of the clock being piggybacked.
  [[nodiscard]] std::uint64_t next_run(VarId x, const VectorClock& clock);

  VectorClock applied_;

 private:
  // -- indexed engine --------------------------------------------------------
  //
  // Invariants (indexed mode):
  //   * registry_ holds every pending message keyed by a monotone arrival
  //     stamp — map order IS arrival order, so snapshots and iteration stay
  //     byte-identical to the seed's insertion-ordered vector;
  //   * by_sender_[u] mirrors registry_ as (write_seq → stamp), the
  //     seq-ordered FIFO used for O(stale) purges and duplicate detection;
  //   * every live stamp is registered in exactly ONE place: a watch_[t]
  //     bucket (keyed by the apply-counter value of t that would satisfy the
  //     first failing conjunct of its wait condition) or the ready_ heap.
  //     Stamps removed from registry_ may linger in watch_/ready_; they are
  //     lazily dropped on encounter (stamps are never reused).
  //   * after every public entry point returns, no pending message is stale
  //     (purge passes remove the just-applied sender's superseded prefix
  //     before the next apply pops).
  void buffer_indexed(WriteUpdate m);
  void drain_worklist(ProcessId first_sender);
  /// The apply event itself, shared by both engines: skips, counter bump,
  /// install, post_apply, stats, observer — everything except the drain.
  void apply_events(const WriteUpdate& m, bool delayed);
  /// Re-examine every watcher of `t` whose threshold applied_[t] now meets.
  void wake(ProcessId t);
  /// Register `stamp` under the first failing conjunct of m's wait
  /// condition, or push it on the ready heap when none fails.
  void watch_or_ready(std::uint64_t stamp, const WriteUpdate& m);
  /// Remove newly superseded messages.  `dirty` is the only sender whose
  /// counter advanced since the last pass (purge_all_ widens it to everyone
  /// after a restore).  Skipped entirely — and counted — when it provably
  /// cannot remove anything.
  void purge_pass(ProcessId dirty);
  void purge_sender(ProcessId t);
  /// Pop ready stamps until one is still pending; extract and return it.
  [[nodiscard]] std::optional<WriteUpdate> take_ready();

  // -- reference engine (the seed's algorithm, verbatim) ---------------------
  void drain_reference();
  void purge_stale_reference();

  void track_peak();

  /// Arbitration: install iff the incoming write outranks the variable's
  /// current holder under ((clock-sum, writer) — a total order extending
  /// ↦co).  Always true outside convergent mode.
  [[nodiscard]] bool wins_arbitration(VarId x, const VectorClock& clock,
                                      ProcessId writer);
  void record_winner(VarId x, const VectorClock& clock, ProcessId writer);

  bool reference_drain_ = false;
  std::vector<WriteUpdate> pending_;  // reference engine only

  // Indexed-engine storage (empty in reference mode).
  std::map<std::uint64_t, WriteUpdate> registry_;  // arrival stamp → message
  std::uint64_t next_stamp_ = 0;
  /// Per sender: write_seq → stamp (multimap: duplicate deliveries of the
  /// same write may both sit pending until one applies).
  std::vector<std::multimap<SeqNo, std::uint64_t>> by_sender_;
  /// Per process t: threshold → stamps to re-examine once applied_[t] ≥
  /// threshold.
  std::vector<std::map<std::uint64_t, std::vector<std::uint64_t>>> watch_;
  /// Stamps whose wait condition held when last examined (arrival order via
  /// min-heap — matches the seed's first-applicable-in-insertion-order pick).
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      ready_;
  /// True once any duplicate (sender, write_seq) pair was seen pending —
  /// without writing semantics, staleness can only arise from duplicates, so
  /// until then purge passes are provably no-ops.
  bool duplicate_seen_ = false;
  /// Force the next purge pass to sweep every sender (set by restore():
  /// a restored buffer may hold stale entries from any sender, and
  /// duplicate_seen_ cannot be recomputed exactly from the snapshot alone).
  bool purge_all_ = false;
  /// An own-write apply advanced applied_[self] while messages from self sat
  /// pending (possible only after catch-up re-delivers pre-crash writes) —
  /// the next purge pass must include self in its dirty set.
  bool self_dirty_ = false;

  bool ws_;
  bool convergent_;
  /// Per variable: (clock-sum, writer) of the installed value's write.
  std::vector<std::pair<std::uint64_t, ProcessId>> lww_key_;

  // Writing-semantics sender state: the variable and foreign clock snapshot
  // of our previous outgoing write, plus the run length it carried.
  bool have_prev_write_ = false;
  VarId prev_var_ = 0;
  VectorClock prev_clock_;
  std::uint64_t prev_run_ = 0;
};

}  // namespace dsm
