#include "dsm/protocols/token.h"

#include <algorithm>

#include "dsm/common/contracts.h"

namespace dsm {

TokenWs::TokenWs(ProcessId self, std::size_t n_procs, std::size_t n_vars,
                 Endpoint& endpoint, ProtocolObserver& observer,
                 std::uint64_t max_rounds)
    : CausalProtocol(self, n_procs, n_vars, endpoint, observer),
      max_rounds_(max_rounds),
      last_seq_from_(n_procs, 0) {}

void TokenWs::start() {
  if (self_ == 0) {
    held_round_ = 0;
    try_emit();
  }
}

void TokenWs::write(VarId x, Value v) {
  DSM_REQUIRE(x < n_vars_);
  ++stats_.writes_issued;
  const SeqNo seq = ++writes_total_;

  // Local apply is immediate: a process always observes its own writes.
  store(x, v, WriteId{self_, seq});
  observer_->on_apply(self_, WriteId{self_, seq}, /*delayed=*/false);

  // Coalesce into the current batch: only the last write per variable will
  // be propagated when the token arrives (sender-side writing semantics).
  auto [it, inserted] = batch_.try_emplace(x);
  if (!inserted) {
    it->second.skipped += 1;
    ++tstats_.coalesced_writes;
  }
  it->second.var = x;
  it->second.value = v;
  it->second.write_seq = seq;
}

ReadResult TokenWs::read(VarId x) {
  DSM_REQUIRE(x < n_vars_);
  ++stats_.reads_issued;
  const ReadResult result = peek(x);
  observer_->on_return(self_, x, result.value, result.writer);
  return result;
}

void TokenWs::on_message(ProcessId from, std::span<const std::uint8_t> bytes) {
  auto decoded = decode_message(bytes);
  DSM_REQUIRE(decoded.has_value());
  ++stats_.messages_received;
  if (const auto* grant = std::get_if<TokenGrant>(&*decoded)) {
    DSM_REQUIRE(grant->holder == self_);
    (void)from;
    handle_grant(*grant);
  } else if (const auto* batch = std::get_if<BatchUpdate>(&*decoded)) {
    DSM_REQUIRE(batch->sender == from);
    handle_batch(*batch);
  } else {
    DSM_REQUIRE(false && "unexpected message type for token-ws");
  }
}

void TokenWs::handle_grant(const TokenGrant& g) {
  DSM_REQUIRE(!held_round_.has_value());
  DSM_REQUIRE(g.round % n_procs_ == self_);
  held_round_ = g.round;
  if (g.round > next_round_) ++tstats_.token_waits;  // lagging batches gate us
  try_emit();
}

void TokenWs::try_emit() {
  // Emit only when every earlier round's batch has been applied here: then
  // everything we read (and thus everything our batch causally depends on)
  // is ordered before our batch at every process.
  if (!held_round_ || next_round_ != *held_round_) return;
  const std::uint64_t round = *held_round_;
  held_round_.reset();

  BatchUpdate b;
  b.sender = self_;
  b.round = round;
  b.entries.reserve(batch_.size());
  for (auto& [var, entry] : batch_) b.entries.push_back(entry);
  batch_.clear();

  ++tstats_.rounds_held;
  if (b.entries.empty()) ++tstats_.empty_batches;

  endpoint_->broadcast(encode_payload(Message{b}));

  // Our own batch counts as applied (values were installed at write time).
  last_seq_from_[self_] = writes_total_;
  next_round_ = round + 1;

  // Pass the token unless the circulation cap was reached.
  if (round + 1 < max_rounds_) {
    const auto next_holder = static_cast<ProcessId>((round + 1) % n_procs_);
    TokenGrant grant{round + 1, next_holder};
    if (next_holder == self_) {
      handle_grant(grant);  // n == 1 degenerate case
    } else {
      endpoint_->send(next_holder, encode_payload(Message{grant}));
    }
  }
  drain_batches();
}

void TokenWs::handle_batch(const BatchUpdate& b) {
  if (b.round == next_round_) {
    apply_batch(b, /*delayed=*/false);
    drain_batches();
  } else {
    DSM_REQUIRE(b.round > next_round_);  // rounds never repeat
    ++stats_.delayed_writes;             // unit: delayed *batches* (see bench docs)
    buffered_.push_back(b);
    stats_.peak_pending =
        std::max<std::uint64_t>(stats_.peak_pending, buffered_.size());
  }
}

void TokenWs::apply_batch(const BatchUpdate& b, bool delayed) {
  DSM_REQUIRE(b.round == next_round_);

  // Entries in sender program order so surviving writes apply in ↦po order.
  std::vector<BatchEntry> entries = b.entries;
  std::sort(entries.begin(), entries.end(),
            [](const BatchEntry& x, const BatchEntry& y) {
              return x.write_seq < y.write_seq;
            });

  SeqNo max_seq = last_seq_from_[b.sender];
  for (const auto& e : entries) max_seq = std::max(max_seq, e.write_seq);

  // Walk the sender's sequence range in order, emitting a skip (superseded,
  // never applied here) or an apply per write — strictly in ↦po order, so
  // the observed event order extends ↦co.
  std::size_t next_entry = 0;
  for (SeqNo k = last_seq_from_[b.sender] + 1; k <= max_seq; ++k) {
    if (next_entry < entries.size() && entries[next_entry].write_seq == k) {
      const BatchEntry& e = entries[next_entry++];
      store(e.var, e.value, WriteId{b.sender, k});
      ++stats_.remote_applies;
      observer_->on_apply(self_, WriteId{b.sender, k}, delayed);
    } else {
      ++stats_.skipped_writes;
      observer_->on_skip(self_, WriteId{b.sender, k}, WriteId{b.sender, max_seq});
    }
  }

  last_seq_from_[b.sender] = max_seq;
  next_round_ = b.round + 1;
}

void TokenWs::drain_batches() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < buffered_.size(); ++i) {
      if (buffered_[i].round == next_round_) {
        const BatchUpdate b = std::move(buffered_[i]);
        buffered_.erase(buffered_.begin() + static_cast<std::ptrdiff_t>(i));
        apply_batch(b, /*delayed=*/true);
        progress = true;
        break;
      }
    }
    // A freshly unblocked round may let a deferred token grant emit.
    try_emit();
  }
}

std::size_t TokenWs::pending_count() const { return buffered_.size(); }

void TokenWs::snapshot(ByteWriter& w) const {
  CausalProtocol::snapshot(w);
  w.u64(next_round_);
  w.u8(held_round_.has_value() ? 1 : 0);
  w.u64(held_round_.value_or(0));
  w.u64(writes_total_);
  w.u64(batch_.size());
  for (const auto& [var, e] : batch_) {
    w.u32(var);
    w.i64(e.value);
    w.u64(e.write_seq);
    w.u64(e.skipped);
  }
  w.u64(buffered_.size());
  for (const BatchUpdate& b : buffered_) b.encode(w);
  std::vector<std::uint64_t> seqs(last_seq_from_.begin(), last_seq_from_.end());
  w.u64_vec(seqs);
}

bool TokenWs::restore(ByteReader& r) {
  if (!CausalProtocol::restore(r)) return false;
  const auto next_round = r.u64();
  const auto has_held = r.u8();
  const auto held = r.u64();
  const auto writes_total = r.u64();
  const auto n_batch = r.u64();
  if (!next_round || !has_held || !held || !writes_total || !n_batch ||
      *n_batch > (1ULL << 24)) {
    return false;
  }
  next_round_ = *next_round;
  held_round_ = *has_held != 0 ? std::optional<std::uint64_t>{*held}
                               : std::nullopt;
  writes_total_ = *writes_total;
  batch_.clear();
  for (std::uint64_t i = 0; i < *n_batch; ++i) {
    const auto var = r.u32();
    const auto value = r.i64();
    const auto seq = r.u64();
    const auto skipped = r.u64();
    if (!var || !value || !seq || !skipped) return false;
    batch_[*var] = BatchEntry{*var, *value, *seq, *skipped};
  }
  const auto n_buffered = r.u64();
  if (!n_buffered || *n_buffered > (1ULL << 24)) return false;
  buffered_.clear();
  for (std::uint64_t i = 0; i < *n_buffered; ++i) {
    auto b = BatchUpdate::decode(r);
    if (!b) return false;
    buffered_.push_back(std::move(*b));
  }
  auto seqs = r.u64_vec();
  if (!seqs || seqs->size() != last_seq_from_.size()) return false;
  std::copy(seqs->begin(), seqs->end(), last_seq_from_.begin());
  return true;
}

}  // namespace dsm
