// optcm — ANBKH: the causal-broadcast baseline (Ahamad–Neiger–Burns–Kohli–
// Hutto [1], as characterized in paper Section 3.6).
//
// ANBKH orders all apply events by the happened-before relation → of the
// corresponding send events, enforcing causal message delivery with a
// Fidge–Mattern vector clock whose relevant events are the write sends:
//
//   X_ANBKH(apply_k(w)) = { apply_k(w') : send(w') ∈ ↓(send(w), →) }.
//
// Concretely (Birman–Schiper–Stephenson style): VC[j] counts p_j's writes
// applied here; a write bumps VC[self] and piggybacks VC; a message from p_u
// is applicable when VC_msg[u] = VC[u] + 1 and ∀t≠u : VC_msg[t] ≤ VC[t].
// Since applying a message *merges* its clock, the piggybacked vector records
// every write whose message was delivered before the send — whether or not
// its value was ever read.  That is the source of *false causality*: in the
// paper's Figure 3 run, p3 must delay w2(x2)b until w1(x1)c arrives although
// w2(x2)b ‖co w1(x1)c.  ANBKH is safe but not write-delay optimal.
//
// The VC here is exactly BufferingProtocol::applied_ (apply counters double
// as the clock), which makes the one real difference from OptP stand out:
// ANBKH piggybacks/merges on APPLY; OptP piggybacks Write_co merged on READ.
//
// Constructing with writing_semantics = true yields the receiver-side
// writing-semantics variant in the spirit of [2]/[14] ("anbkh-ws").

#pragma once

#include "dsm/protocols/buffering.h"

namespace dsm {

class Anbkh final : public BufferingProtocol {
 public:
  Anbkh(ProcessId self, std::size_t n_procs, std::size_t n_vars,
        Endpoint& endpoint, ProtocolObserver& observer,
        bool writing_semantics = false);

  void write(VarId x, Value v) override;
  ReadResult read(VarId x) override;

  [[nodiscard]] std::string name() const override;

  /// The Fidge–Mattern clock (== apply counters; exposed for tests).
  [[nodiscard]] const VectorClock& clock() const noexcept { return applied_; }

 private:
  void post_apply(const WriteUpdate& m, bool installed) override;
};

}  // namespace dsm
