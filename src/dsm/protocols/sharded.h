// optcm — ShardedOptP: subscription-routed OptP (after Xiang & Vaidya,
// "Partial Replication: Causal Consistency, Lower Bounds and an Optimal
// Algorithm"; see PAPERS.md).
//
// Where PartialOptP is metadata-full — every write still broadcasts an O(n)
// control message so the Fig. 5 wait condition can keep complete per-sender
// Apply counters — ShardedOptP routes each write only to its variable's
// subscription set.  Both the message count and the carried metadata then
// scale with |subs(x)|, not with n.
//
// Data structures (per process i; `q-relevant` means "on a variable q
// subscribes to"):
//
//   K[1..n][1..n]     — the causal-knowledge matrix.  K[q][t] = s means:
//                       t's s-th q-relevant write is in my causal past.
//                       Row self doubles as the per-subscriber send counter:
//                       a write of x ticks K[q][self] for every q ∈ subs(x).
//   AppliedRel[1..n]  — AppliedRel[t] = number of t's self-relevant writes
//                       applied here (the subscription-trimmed Apply[]).
//   LastWriteOn[1..m] — the dependency matrix of the last write applied to
//                       x_h here (sparse; merged into K on READ, never on
//                       apply — the paper's false-causality discipline).
//
// WRITE(x, v): tick K[q][self] ∀q ∈ subs(x); ship the nonzero entries of K
//   as the message's dep matrix; unicast to subs(x) − self; apply locally.
//
// READ(x): K := max(K, LastWriteOn[x]) entry-wise; return the local copy.
//
// On receipt of m from u at subscriber q = self (Fig. 5 with "writes by t"
// narrowed to "writes by t relevant to me"):
//   wait until  AppliedRel[u] = m.dep[self][u] − 1
//               ∧ ∀t≠u : m.dep[self][t] ≤ AppliedRel[t];
//   then apply;  AppliedRel[u] := m.dep[self][u];  LastWriteOn[x] := m.dep.
//
// Why a full matrix and not just row self?  A causal chain can pass through
// processes that share no variable with the final receiver (t writes x with
// subs {t,r,q}; r reads x, writes y with subs {r,p}; p reads y, writes z
// with subs {p,q}) — q must still order z after x's write, and only matrix
// rows propagated through the chain convey that.  This is exactly the
// metadata Xiang & Vaidya prove necessary; with a full subscription map
// every row evolves identically to Write_co and the protocol degenerates to
// OptP (same events, same wait outcomes).
//
// Contracts: reads and writes of x require self ∈ subs(x) (DSM_REQUIRE, as
// PartialOptP does for replicas); an update arriving at a non-subscriber is
// a routing bug and also aborts.  Crash recovery is out of scope (the map
// trims exactly the global counters catch-up would need), so the registry
// refuses to build a recoverable sharded host.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsm/protocols/protocol.h"
#include "dsm/protocols/subscription.h"

namespace dsm {

class ShardedOptP final : public CausalProtocol {
 public:
  ShardedOptP(ProcessId self, std::size_t n_procs, std::size_t n_vars,
              Endpoint& endpoint, ProtocolObserver& observer,
              std::shared_ptr<const SubscriptionMap> subscription,
              std::size_t write_blob_size = 0);

  /// Requires self ∈ subs(x).
  void write(VarId x, Value v) override;

  /// Requires self ∈ subs(x).
  ReadResult read(VarId x) override;

  void on_message(ProcessId from, std::span<const std::uint8_t> bytes) override;

  [[nodiscard]] std::size_t pending_count() const override {
    return pending_.size();
  }

  [[nodiscard]] std::string name() const override { return "optp-sharded"; }

  void snapshot(ByteWriter& w) const override;
  [[nodiscard]] bool restore(ByteReader& r) override;

  [[nodiscard]] const SubscriptionMap& subscription() const noexcept {
    return *subscription_;
  }

  /// Row q of the knowledge matrix (exposed for the degeneration tests:
  /// under a full map every row equals OptP's Write_co).
  [[nodiscard]] const VectorClock& knowledge_row(ProcessId q) const;

  /// AppliedRel — the subscription-trimmed Apply counters (for tests).
  [[nodiscard]] const VectorClock& applied_rel() const noexcept {
    return applied_rel_;
  }

  /// Unicast update messages actually handed to the transport (the O(|subs|)
  /// claim the bench verifies) and dep-matrix entries shipped with them (the
  /// metadata the auditor checks against the Xiang–Vaidya floor).
  [[nodiscard]] std::uint64_t unicasts_sent() const noexcept {
    return unicasts_sent_;
  }
  [[nodiscard]] std::uint64_t dep_entries_shipped() const noexcept {
    return dep_entries_shipped_;
  }

 private:
  /// The receive wait condition (see file comment).
  [[nodiscard]] bool can_apply(const WriteUpdate& m) const;

  /// Apply m here: install the value, bump AppliedRel, store LastWriteOn.
  void apply_update(const WriteUpdate& m, bool delayed);

  /// Enabling-set shortfall of a buffered m (instrumentation only).
  [[nodiscard]] std::uint64_t enabling_deficit(const WriteUpdate& m) const;

  /// Re-scan the pending buffer until no entry is applicable (the reference
  /// linear drain; subscription sharding keeps per-process buffers small).
  void drain_pending();

  /// m.dep[row][col], with absent entries reading as 0.
  [[nodiscard]] static SeqNo dep_at(const WriteUpdate& m, ProcessId row,
                                    ProcessId col);

  std::shared_ptr<const SubscriptionMap> subscription_;
  std::vector<VectorClock> knowledge_;      ///< K, row-major [q][t]
  VectorClock applied_rel_;                 ///< AppliedRel[1..n]
  std::vector<std::vector<SubDep>> last_write_on_;  ///< sparse, per variable
  std::vector<WriteUpdate> pending_;
  std::size_t write_blob_size_;
  WriteUpdate outgoing_;  ///< write() scratch (buffer reuse)
  std::uint64_t unicasts_sent_ = 0;
  std::uint64_t dep_entries_shipped_ = 0;
};

}  // namespace dsm
