#include "dsm/protocols/sharded.h"

#include <algorithm>

#include "dsm/common/contracts.h"

namespace dsm {

ShardedOptP::ShardedOptP(ProcessId self, std::size_t n_procs,
                         std::size_t n_vars, Endpoint& endpoint,
                         ProtocolObserver& observer,
                         std::shared_ptr<const SubscriptionMap> subscription,
                         std::size_t write_blob_size)
    : CausalProtocol(self, n_procs, n_vars, endpoint, observer),
      subscription_(std::move(subscription)),
      knowledge_(n_procs, VectorClock{n_procs}),
      applied_rel_(n_procs),
      last_write_on_(n_vars),
      write_blob_size_(write_blob_size) {
  DSM_REQUIRE(subscription_ != nullptr);
  DSM_REQUIRE(subscription_->n_procs() == n_procs);
  DSM_REQUIRE(subscription_->n_vars() == n_vars);
}

SeqNo ShardedOptP::dep_at(const WriteUpdate& m, ProcessId row, ProcessId col) {
  // Entries are sorted by (row, col); binary search keeps the wait condition
  // O(log |deps|) per lookup.
  const auto it = std::lower_bound(
      m.sub_deps.begin(), m.sub_deps.end(), std::pair{row, col},
      [](const SubDep& d, const std::pair<ProcessId, ProcessId>& key) {
        return d.row != key.first ? d.row < key.first : d.col < key.second;
      });
  if (it == m.sub_deps.end() || it->row != row || it->col != col) return 0;
  return it->seq;
}

void ShardedOptP::write(VarId x, Value v) {
  DSM_REQUIRE(x < n_vars_);
  DSM_REQUIRE(subscription_->is_subscriber(x, self_) &&
              "ShardedOptP::write: self must subscribe to x");
  ++stats_.writes_issued;

  // Tick the send counter toward every subscriber: this write is the next
  // q-relevant write by self for each q ∈ subs(x).  self ∈ subs(x) by the
  // contract above, so K[self][self] is a per-write unique sequence number.
  for (const ProcessId q : subscription_->subscribers(x)) {
    knowledge_[q].tick(self_);
  }
  const SeqNo seq = knowledge_[self_][self_];

  WriteUpdate& m = outgoing_;
  m.sender = self_;
  m.var = x;
  m.value = v;
  m.write_seq = seq;
  m.clock = knowledge_[self_];  // summary row (diagnostics; not waited on)
  m.run = 0;
  m.meta_only = false;
  m.blob.assign(write_blob_size_, static_cast<std::uint8_t>(v));
  m.sub_deps.clear();
  for (ProcessId q = 0; q < n_procs_; ++q) {
    const auto row = knowledge_[q].components();
    for (ProcessId t = 0; t < n_procs_; ++t) {
      if (row[t] != 0) m.sub_deps.push_back(SubDep{q, t, row[t]});
    }
  }
  stamp_typed(m);

  observer_->on_send(self_, m);

  // Fig. 4 line 2, subscription-routed: one shared payload, one unicast per
  // foreign subscriber — never the full group.
  const Payload payload = encode_payload(m);
  for (const ProcessId q : subscription_->subscribers(x)) {
    if (q == self_) continue;
    endpoint_->send(q, payload);
    ++unicasts_sent_;
    dep_entries_shipped_ += m.sub_deps.size();
  }

  // Local apply (wait-free, liveness L1).
  store(x, v, WriteId{self_, seq});
  applied_rel_[self_] = knowledge_[self_][self_];
  last_write_on_[x] = m.sub_deps;
  observer_->on_apply(self_, WriteId{self_, seq}, /*delayed=*/false);
}

ReadResult ShardedOptP::read(VarId x) {
  DSM_REQUIRE(x < n_vars_);
  DSM_REQUIRE(subscription_->is_subscriber(x, self_) &&
              "ShardedOptP::read: self must subscribe to x");
  ++stats_.reads_issued;

  // The merge-on-READ discipline (Fig. 5 read line 1), lifted to matrices:
  // only now does the last write's causal past enter self's — reading is the
  // only way foreign causality becomes self's obligation.
  for (const SubDep& d : last_write_on_[x]) {
    VectorClock& row = knowledge_[d.row];
    if (row[d.col] < d.seq) row[d.col] = d.seq;
  }

  const ReadResult result = peek(x);
  observer_->on_return(self_, x, result.value, result.writer);
  return result;
}

bool ShardedOptP::can_apply(const WriteUpdate& m) const {
  const ProcessId u = m.sender;
  for (ProcessId t = 0; t < n_procs_; ++t) {
    const SeqNo need = dep_at(m, self_, t);
    if (t == u) {
      if (applied_rel_[t] != need - 1) return false;
    } else if (need > applied_rel_[t]) {
      return false;
    }
  }
  return true;
}

std::uint64_t ShardedOptP::enabling_deficit(const WriteUpdate& m) const {
  std::uint64_t missing = 0;
  for (ProcessId t = 0; t < n_procs_; ++t) {
    const SeqNo need = t == m.sender ? dep_at(m, self_, t) - 1
                                     : dep_at(m, self_, t);
    if (need > applied_rel_[t]) missing += need - applied_rel_[t];
  }
  return missing;
}

void ShardedOptP::apply_update(const WriteUpdate& m, bool delayed) {
  store(m.var, m.value, WriteId{m.sender, m.write_seq});
  applied_rel_[m.sender] = dep_at(m, self_, m.sender);
  last_write_on_[m.var] = m.sub_deps;
  ++stats_.remote_applies;
  observer_->on_apply(self_, WriteId{m.sender, m.write_seq}, delayed);
}

void ShardedOptP::drain_pending() {
  // Linear drain to fixpoint: each apply can enable earlier arrivals.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      ++stats_.drain_scans;
      if (!can_apply(pending_[i])) continue;
      WriteUpdate m = std::move(pending_[i]);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      apply_update(m, /*delayed=*/true);
      if (instr_ != nullptr) instr_->on_buffer_drained(pending_.size());
      progressed = true;
      break;
    }
  }
}

void ShardedOptP::on_message(ProcessId from, std::span<const std::uint8_t> bytes) {
  auto decoded = decode_message(bytes);
  DSM_REQUIRE(decoded.has_value() && "ShardedOptP: malformed frame");
  auto* update = std::get_if<WriteUpdate>(&*decoded);
  DSM_REQUIRE(update != nullptr && "ShardedOptP: unexpected message type");
  WriteUpdate m = std::move(*update);
  DSM_REQUIRE(m.sender == from);
  DSM_REQUIRE(m.var < n_vars_);

  ++stats_.messages_received;
  observer_->on_receipt(self_, m);

  // Routing contract: the sender unicasts to subs(var) only, so an update
  // arriving anywhere else is a dispatch bug, not a protocol state.
  DSM_REQUIRE(subscription_->is_subscriber(m.var, self_) &&
              "ShardedOptP: update routed to a non-subscriber");

  // Reliable exactly-once transport makes a replay impossible in-protocol,
  // but a duplicate is cheap to detect: its per-self seq is already applied.
  if (dep_at(m, self_, m.sender) <= applied_rel_[m.sender]) {
    ++stats_.stale_discards;
    return;
  }

  if (can_apply(m)) {
    apply_update(m, /*delayed=*/false);
    drain_pending();
    return;
  }

  // Write delay (Definition 3): buffer until the enabling applies occur.
  ++stats_.delayed_writes;
  if (instr_ != nullptr) {
    instr_->on_update_buffered(pending_.size() + 1, enabling_deficit(m));
  }
  pending_.push_back(std::move(m));
  stats_.peak_pending = std::max<std::uint64_t>(stats_.peak_pending,
                                                pending_.size());
}

const VectorClock& ShardedOptP::knowledge_row(ProcessId q) const {
  DSM_REQUIRE(q < n_procs_);
  return knowledge_[q];
}

void ShardedOptP::snapshot(ByteWriter& w) const {
  CausalProtocol::snapshot(w);
  for (const VectorClock& row : knowledge_) w.u64_vec(row.components());
  w.u64_vec(applied_rel_.components());
  w.u64(last_write_on_.size());
  for (const auto& deps : last_write_on_) {
    w.u64(deps.size());
    for (const SubDep& d : deps) {
      w.u32(d.row);
      w.u32(d.col);
      w.u64(d.seq);
    }
  }
  w.u64(pending_.size());
  for (const WriteUpdate& m : pending_) m.encode(w);
}

bool ShardedOptP::restore(ByteReader& r) {
  if (!CausalProtocol::restore(r)) return false;
  for (VectorClock& row : knowledge_) {
    auto components = r.u64_vec();
    if (!components || components->size() != n_procs_) return false;
    row = VectorClock{std::move(*components)};
  }
  auto applied = r.u64_vec();
  if (!applied || applied->size() != n_procs_) return false;
  applied_rel_ = VectorClock{std::move(*applied)};
  const auto vars = r.u64();
  if (!vars || *vars != last_write_on_.size()) return false;
  for (auto& deps : last_write_on_) {
    const auto count = r.u64();
    if (!count || *count > (1ULL << 24) || *count > r.remaining()) return false;
    deps.clear();
    deps.reserve(static_cast<std::size_t>(*count));
    for (std::uint64_t i = 0; i < *count; ++i) {
      const auto row = r.u32();
      const auto col = r.u32();
      const auto seq = r.u64();
      if (!row || !col || !seq) return false;
      deps.push_back(SubDep{*row, *col, *seq});
    }
  }
  const auto pending = r.u64();
  if (!pending || *pending > (1ULL << 24) || *pending > r.remaining()) {
    return false;
  }
  pending_.clear();
  for (std::uint64_t i = 0; i < *pending; ++i) {
    auto m = WriteUpdate::decode(r);
    if (!m) return false;
    pending_.push_back(std::move(*m));
  }
  return true;
}

}  // namespace dsm
