// optcm — the protocol class 𝒫 (paper Section 3.2) as a C++ interface.
//
// Every protocol P ∈ 𝒫 produces, for each write w_i(x_h)v, a send event at
// the issuer and receipt/apply events at every process; for each read, a
// return event.  This header fixes that event vocabulary:
//
//   * CausalProtocol  — the per-process protocol state machine.  Transport-
//     agnostic: it talks to the world through an Endpoint (broadcast bytes)
//     and reports its events to a ProtocolObserver.  The same protocol code
//     runs inside the deterministic simulator and on real threads.
//   * ProtocolObserver — receives send/receipt/apply/return/skip events in
//     the exact order the protocol produces them.  The run recorder, the
//     optimality auditor and the figure renderers are all observers.
//   * ProtocolStats — per-process operational counters, including the
//     paper's central quantity: the number of write messages that suffered a
//     write delay (Definition 3: buffered at receipt because some enabling
//     event had not yet occurred).
//
// Concurrency contract: a CausalProtocol instance is confined to one logical
// thread of control.  The simulator guarantees this by construction; the
// threaded runtime serializes calls with a per-node mutex.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dsm/codec/message.h"
#include "dsm/common/types.h"

namespace dsm {

/// Transport abstraction: how a protocol instance reaches its peers.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Deliver `payload` to every process except the caller's own (paper
  /// Fig. 4 line 2: send m to Π − p_i).  Reliable, exactly-once, unordered.
  /// The payload is encoded once and shared by refcount across all
  /// receivers — implementations must not mutate it.
  virtual void broadcast(Payload payload) = 0;

  /// Deliver `payload` to one specific peer (token handoffs, partial
  /// replication's per-receiver full/meta split, catch-up replies).
  virtual void send(ProcessId to, Payload payload) = 0;
};

/// Result of a read operation: the value and the identity of the write that
/// produced it (kNoWrite when the location still holds ⊥).  The writer tag is
/// what lets the recorder reconstruct ↦ro without guessing from values.
struct ReadResult {
  Value value = kBottom;
  WriteId writer;
};

/// Protocol event listener.  Default implementations are no-ops so observers
/// override only what they need.
class ProtocolObserver {
 public:
  virtual ~ProtocolObserver() = default;

  /// The issuer is about to propagate write `w` (paper: send event).
  virtual void on_send(ProcessId /*at*/, const WriteUpdate& /*m*/) {}
  /// A write message arrived at a process (paper: receipt event).
  virtual void on_receipt(ProcessId /*at*/, const WriteUpdate& /*m*/) {}
  /// Write `w` was applied to the local copy.  `delayed` is true iff the
  /// message was buffered at receipt (Definition 3).
  virtual void on_apply(ProcessId /*at*/, WriteId /*w*/, bool /*delayed*/) {}
  /// A read returned (paper: return event).
  virtual void on_return(ProcessId /*at*/, VarId /*x*/, Value /*v*/,
                         WriteId /*from*/) {}
  /// Writing semantics: write `w` was skipped at this process because `by`
  /// supersedes it (w is "logically applied immediately before" by).
  virtual void on_skip(ProcessId /*at*/, WriteId /*w*/, WriteId /*by*/) {}
};

/// Buffer-level instrumentation hooks (telemetry layer).  Unlike
/// ProtocolObserver — which carries the paper's event vocabulary and feeds
/// the verifiers — these hooks expose *mechanical* facts about the pending
/// buffer that only the protocol itself can see at the moment they happen.
/// Default implementations are no-ops; protocols hold a nullable pointer and
/// pay one branch per buffering event when no instrumentation is attached.
class ProtocolInstrumentation {
 public:
  virtual ~ProtocolInstrumentation() = default;

  /// A receipt was buffered (write delay, Definition 3).  `depth` is the
  /// pending-buffer size after insertion; `missing` is the number of enabling
  /// apply events that have not yet occurred locally (the enabling-set
  /// cardinality shortfall: Σ_t missing applies the wait condition needs).
  virtual void on_update_buffered(std::size_t /*depth*/,
                                  std::uint64_t /*missing*/) {}

  /// A buffered update left the pending buffer (applied after its enabling
  /// events occurred, or discarded as superseded).  `depth` is the size
  /// after removal.
  virtual void on_buffer_drained(std::size_t /*depth*/) {}
};

/// Per-process operational counters.
struct ProtocolStats {
  std::uint64_t writes_issued = 0;
  std::uint64_t reads_issued = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t remote_applies = 0;
  /// Messages buffered at receipt because the enabling condition failed —
  /// the paper's write-delay count (Definition 3).
  std::uint64_t delayed_writes = 0;
  /// Writing semantics only: writes never applied here because a superseding
  /// write was applied instead.
  std::uint64_t skipped_writes = 0;
  /// Writing semantics only: messages discarded on arrival (already
  /// superseded).
  std::uint64_t stale_discards = 0;
  /// High-water mark of the pending (buffered) message set.
  std::uint64_t peak_pending = 0;
  /// Pending-buffer entries examined by the drain machinery (applicability
  /// tests, watch-index wakes, purge probes).  The indexed drain's count is
  /// O(newly-enabled); the reference linear drain's is O(|pending|²·n) on
  /// adversarial schedules — see docs/PERF.md.
  std::uint64_t drain_scans = 0;
  /// Drain purge passes skipped because they provably could not remove
  /// anything (writing semantics off and no duplicate delivery observed).
  std::uint64_t purges_avoided = 0;

  /// Accumulate counters across process incarnations (crash recovery sums a
  /// process's stats over its lifetimes).  peak_pending is a high-water
  /// mark, so it maxes instead of summing.
  ProtocolStats& operator+=(const ProtocolStats& o) noexcept {
    writes_issued += o.writes_issued;
    reads_issued += o.reads_issued;
    messages_received += o.messages_received;
    remote_applies += o.remote_applies;
    delayed_writes += o.delayed_writes;
    skipped_writes += o.skipped_writes;
    stale_discards += o.stale_discards;
    peak_pending = peak_pending > o.peak_pending ? peak_pending : o.peak_pending;
    drain_scans += o.drain_scans;
    purges_avoided += o.purges_avoided;
    return *this;
  }
};

/// Base class for every protocol in the library.  Owns the replicated store
/// (one copy of all m variables, paper Section 3.1) and the stats block.
///
/// Thread-safety (applies to every method unless noted): an instance is
/// confined to one logical thread of control.  The simulator guarantees this
/// by construction (one event at a time); the threaded runtime serializes
/// all calls through a per-node mutex.  No method is safe to call
/// concurrently with another on the same instance.
class CausalProtocol {
 public:
  /// Preconditions: `self < n_procs`, `n_procs ≥ 1`, `n_vars ≥ 1`; `endpoint`
  /// and `observer` outlive the instance.
  CausalProtocol(ProcessId self, std::size_t n_procs, std::size_t n_vars,
                 Endpoint& endpoint, ProtocolObserver& observer);
  virtual ~CausalProtocol() = default;

  CausalProtocol(const CausalProtocol&) = delete;
  CausalProtocol& operator=(const CausalProtocol&) = delete;

  /// Hook called once by the harness after every process is wired to the
  /// transport and before any operation runs (the token protocol seeds its
  /// token here).  Default: nothing.
  /// Precondition: called at most once, before any write/read/on_message.
  virtual void start() {}

  /// Execute w_self(x)v: propagate and apply locally.
  /// Precondition: `x < n_vars()`.  Postcondition: the write is applied
  /// locally (wait-free; paper Section 3.1 liveness L1) and an update has
  /// been handed to the Endpoint; on_send then on_apply fired on the
  /// observer.
  virtual void write(VarId x, Value v) = 0;

  /// Execute r_self(x): wait-free local read.
  /// Precondition: `x < n_vars()`.  Postcondition: returns the local copy
  /// (⊥/kNoWrite if never written) and fires on_return; OptP additionally
  /// merges LastWriteOn[x] into Write_co (the read-from edge, Fig. 5).
  virtual ReadResult read(VarId x) = 0;

  /// Execute a typed mutation (dsm/objects): the spec-defined opcode with
  /// primary operand `arg` and secondary operand `arg2` is replicated as an
  /// opaque trailer on the ordinary WriteUpdate for x — for causal-metadata
  /// purposes a typed mutation IS a write, so clocks, wait conditions and
  /// observer events are exactly those of write(x, arg).  Raw spec/opcode
  /// bytes keep this layer link-independent of the objects library.
  /// Supported by the protocols that stamp their outgoing updates (OptP,
  /// ANBKH, ShardedOptP); aborts via contracts elsewhere.
  void write_typed(VarId x, std::uint8_t spec, std::uint8_t opcode, Value arg,
                   Value arg2);

  /// A message (as bytes) arrived from `from`.  May trigger zero or more
  /// applies, including of previously buffered messages.
  /// Precondition: `bytes` is a complete frame produced by a peer instance
  /// of the same protocol (malformed input aborts via contracts — transport
  /// integrity is the ARQ layer's job, not the protocol's).
  virtual void on_message(ProcessId from, std::span<const std::uint8_t> bytes) = 0;

  /// Number of currently buffered (received but not applied) updates.
  [[nodiscard]] virtual std::size_t pending_count() const = 0;

  /// True when the instance has no buffered work and nothing left to
  /// propagate (the token protocol also requires an empty outgoing batch).
  /// The harness uses this to decide when a run has settled.
  [[nodiscard]] virtual bool quiescent() const { return pending_count() == 0; }

  /// Stable identifier used by benches/tables ("optp", "anbkh", …).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Serialize the protocol's durable state (store, apply counters, pending
  /// buffer, protocol-specific vectors) into `w` — the checkpoint half of
  /// crash recovery (beyond the paper's crash-free model; docs/FAULTS.md).
  /// Subclasses chain: call the base snapshot first, then append their own
  /// state.  Operational stats are deliberately NOT checkpointed: a crash
  /// loses counters, and the harness accumulates them across incarnations.
  virtual void snapshot(ByteWriter& w) const;

  /// Inverse of snapshot() onto a freshly constructed instance with the same
  /// shape (self, n_procs, n_vars).  Returns false on malformed input.
  /// Precondition: the instance is fresh (no operations executed).
  /// Postcondition on true: observable state (store, counters, pending
  /// buffer) equals the snapshotted instance's at checkpoint time.
  [[nodiscard]] virtual bool restore(ByteReader& r);

  /// Attach buffer-level instrumentation (telemetry), or detach with nullptr.
  /// The hooks fire from inside on_message; `instr` must outlive the
  /// instance or be detached first.  Default: detached (zero overhead beyond
  /// one null check per buffering event).
  void set_instrumentation(ProtocolInstrumentation* instr) noexcept {
    instr_ = instr;
  }

  /// Shape accessors (immutable after construction; safe from any thread).
  [[nodiscard]] ProcessId self() const noexcept { return self_; }
  [[nodiscard]] std::size_t n_procs() const noexcept { return n_procs_; }
  [[nodiscard]] std::size_t n_vars() const noexcept { return n_vars_; }

  /// Operational counters so far (same confinement rules as the operations).
  [[nodiscard]] const ProtocolStats& stats() const noexcept { return stats_; }

  /// Current local copy of variable x (tagged with its writer).
  [[nodiscard]] ReadResult peek(VarId x) const;

 protected:
  /// Install `value` into the local copy of `x` (the apply event's effect).
  void store(VarId x, Value value, WriteId writer);

  /// Transfer a pending typed trailer (set by write_typed) onto the
  /// outgoing update, or clear the trailer fields for a plain write (the
  /// update struct is a reused member in the hot protocols, so stale typed
  /// fields must not leak into later frames).  Consumes the pending trailer.
  void stamp_typed(WriteUpdate& m) noexcept {
    if (pending_typed_) {
      m.spec = pending_spec_;
      m.opcode = pending_opcode_;
      m.arg2 = pending_arg2_;
      pending_typed_ = false;
    } else {
      m.spec = 0;
      m.opcode = 0;
      m.arg2 = 0;
    }
  }

  /// Encode `m` into a refcounted payload shared by every receiver.  The
  /// intermediate encode buffer is a reused member (no growth churn after
  /// warm-up); the returned allocation is exactly the encoded size.
  [[nodiscard]] Payload encode_payload(const Message& m);
  /// Same, for the broadcast hot path: frames a bare WriteUpdate without
  /// copying its blob into a Message variant first.
  [[nodiscard]] Payload encode_payload(const WriteUpdate& m);

  ProcessId self_;
  std::size_t n_procs_;
  std::size_t n_vars_;
  Endpoint* endpoint_;
  ProtocolObserver* observer_;
  ProtocolInstrumentation* instr_ = nullptr;  // nullable; see set_instrumentation
  ProtocolStats stats_;

 private:
  std::vector<ReadResult> copies_;  // x_1^i … x_m^i, initially ⊥
  std::vector<std::uint8_t> encode_scratch_;  // reused by encode_payload
  // Typed trailer staged by write_typed for the next outgoing update.
  bool pending_typed_ = false;
  std::uint8_t pending_spec_ = 0;
  std::uint8_t pending_opcode_ = 0;
  Value pending_arg2_ = 0;
};

}  // namespace dsm
