// optcm — sender-side writing semantics with a circulating token, after
// Jiménez–Fernández–Cholvi [7] (paper Section 3.6).
//
// The paper's description of [7]: a process p_i applies remote state only in
// token order and "sends its set of updates only when t_i = i.  When a
// process performs several write operations on the same variable x and then
// t_i = i, it only sends the update message corresponding to the last write
// operation on x" — other processes never see the overwritten values.
//
// Concretely here (the brief announcement leaves details open; see DESIGN.md
// §5 for the substitution note):
//   * A token circulates p_0 → p_1 → … → p_{n−1} → p_0; possession of round
//     r belongs to process (r mod n).
//   * Writes apply locally at once (a process always sees its own writes) and
//     are coalesced per variable into the current batch.
//   * On receiving the token for round r, the holder waits until it has
//     applied every batch of rounds < r, then broadcasts its batch (possibly
//     empty — receivers need round continuity), counts it as applied, and
//     passes the token.
//   * Receivers apply batches strictly in round order; an out-of-order batch
//     is buffered (that is this protocol's write delay).
//
// The round order is a total order consistent with ↦co (a write's causal
// past lies in rounds ≤ its own batch round, and anything foreign it read
// came from a strictly earlier round), so histories are causally consistent —
// in fact sequentially consistent, which is why [7] can also serve stronger
// models.  The price: writes wait for the token (publication latency grows
// linearly in n) and overwritten values are never propagated, so the
// protocol is outside class 𝒫.
//
// `max_rounds` bounds circulation so simulations terminate; pick it larger
// than the workload needs (the harness uses ops × n + slack).

#pragma once

#include <map>
#include <optional>
#include <vector>

#include "dsm/protocols/protocol.h"

namespace dsm {

class TokenWs final : public CausalProtocol {
 public:
  TokenWs(ProcessId self, std::size_t n_procs, std::size_t n_vars,
          Endpoint& endpoint, ProtocolObserver& observer,
          std::uint64_t max_rounds);

  /// Process 0 seeds the token.  Called by the harness once all processes
  /// are wired to the transport.
  void start() override;

  void write(VarId x, Value v) override;
  ReadResult read(VarId x) override;
  void on_message(ProcessId from, std::span<const std::uint8_t> bytes) override;

  [[nodiscard]] std::size_t pending_count() const override;
  [[nodiscard]] std::string name() const override { return "token-ws"; }

  /// Quiescent additionally requires the outgoing batch to be empty: writes
  /// still waiting for the token are unpropagated work.
  [[nodiscard]] bool quiescent() const override {
    return buffered_.empty() && batch_.empty();
  }

  /// Rounds whose batches this process has applied (next expected round).
  [[nodiscard]] std::uint64_t next_round() const noexcept { return next_round_; }

  /// State checkpoint.  Note: a crashed token HOLDER loses the in-flight
  /// TokenGrant — regenerating a lost token (election) is outside this
  /// repository's scope, so the crash harness rejects token-ws plans; the
  /// serialization exists so the checkpoint API is total across protocols.
  void snapshot(ByteWriter& w) const override;
  [[nodiscard]] bool restore(ByteReader& r) override;

  /// Extra, token-specific counters.
  struct TokenStats {
    std::uint64_t rounds_held = 0;       ///< batches we broadcast
    std::uint64_t empty_batches = 0;     ///< of which empty
    std::uint64_t coalesced_writes = 0;  ///< own writes superseded pre-send
    std::uint64_t token_waits = 0;       ///< grants that had to wait for lagging batches
  };
  [[nodiscard]] const TokenStats& token_stats() const noexcept { return tstats_; }

 private:
  void handle_grant(const TokenGrant& g);
  void handle_batch(const BatchUpdate& b);
  void apply_batch(const BatchUpdate& b, bool delayed);
  void try_emit();
  void drain_batches();

  std::uint64_t max_rounds_;
  std::uint64_t next_round_ = 0;              ///< next round to apply
  std::optional<std::uint64_t> held_round_;   ///< grant received, not yet emitted
  SeqNo writes_total_ = 0;                    ///< own write counter (WriteIds)
  std::map<VarId, BatchEntry> batch_;         ///< current coalesced batch
  std::vector<BatchUpdate> buffered_;         ///< out-of-order foreign batches
  std::vector<SeqNo> last_seq_from_;          ///< per sender: highest seq covered
  TokenStats tstats_;
};

}  // namespace dsm
