// optcm — crash recovery: write logging and anti-entropy catch-up.
//
// Crash tolerance is an EXTENSION beyond the paper's model (Section 3.1
// assumes crash-free processes); see docs/FAULTS.md for the full fault model
// and DESIGN.md §5 for the scoping note.  The pieces:
//
//   * RecoveryNode sits between the transport and a class-𝒫 protocol
//     (anything derived from BufferingProtocol).  As the protocol's Endpoint
//     it intercepts outgoing WriteUpdates; as the transport's upward sink it
//     intercepts incoming ones.  Either way it appends the update to a
//     per-sender log — the material served to restarting peers.
//   * On restart, a node broadcasts CatchUpRequest(seen) where seen[u] is
//     the contiguous prefix of p_u's writes present in its restored log.
//     Peers reply with every logged write above those watermarks; the writes
//     are fed to the protocol exactly like network deliveries, so the
//     enabling condition, buffering, and writing semantics all apply
//     unchanged.  A peer that sees a request proving the REQUESTER is ahead
//     issues its own request back (symmetric re-request — this is what
//     repairs overlapping crashes).  Requests are triggered, never periodic,
//     and keyed on received (not applied) watermarks, so the exchange
//     terminates: after one round trip both sides have received everything
//     the other had.
//   * The checkpoint hook is invoked after every event that mutates durable
//     state (deliveries and catch-up handling here; script operations in the
//     harness) — a synchronous write-ahead log.  Restore therefore never
//     rolls back an apply, which keeps the audited trace honest: a delayed
//     apply in the deduplicated trace is delayed for a real protocol reason,
//     never because the process forgot state (Theorem 4 auditing survives
//     the fault sweep).
//
// Duplicate deliveries are expected here by design: a write can arrive both
// through a catch-up reply and through the sender's ARQ retransmission (the
// ACK never fired while the receiver was down).  BufferingProtocol's
// staleness check absorbs them; ReplayFilterObserver (below) additionally
// deduplicates the observer event stream so recorders and auditors see each
// receipt/apply once.
//
// The log is unpruned: every write ever seen is kept, which is what a small
// simulated run wants.  A production deployment would truncate below the
// stable vector (all-processes-applied watermark, cf. audit/stability.h).

#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <tuple>
#include <vector>

#include "dsm/common/sink.h"
#include "dsm/protocols/buffering.h"

namespace dsm {

struct RecoveryStats {
  std::uint64_t requests_sent = 0;      ///< catch-up requests issued
  std::uint64_t requests_received = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t writes_served = 0;      ///< log entries shipped in replies
  std::uint64_t writes_recovered = 0;   ///< reply entries fed to the protocol
  std::uint64_t catch_up_bytes = 0;     ///< encoded reply bytes sent

  RecoveryStats& operator+=(const RecoveryStats& o) noexcept {
    requests_sent += o.requests_sent;
    requests_received += o.requests_received;
    replies_sent += o.replies_sent;
    replies_received += o.replies_received;
    writes_served += o.writes_served;
    writes_recovered += o.writes_recovered;
    catch_up_bytes += o.catch_up_bytes;
    return *this;
  }
};

/// Write-logging and anti-entropy interposer for one process.
///
/// Thread-safety: none of its own — it inherits the protocol's confinement
/// contract.  The simulator calls it from the event loop; the threaded
/// cluster calls it under the owning node's mutex.  It must be wired
/// (set_protocol) before the first deliver().
class RecoveryNode final : public Endpoint, public MessageSink {
 public:
  /// Invoked after any state mutation that must be durable (synchronous
  /// checkpoint).  Installed by the harness; may be empty in tests.
  using CheckpointHook = std::function<void()>;

  /// \pre `lower` (the real transport endpoint) outlives this node;
  ///      `self < n_procs`.
  /// \post the node is inert until set_protocol() wires a protocol.
  RecoveryNode(ProcessId self, std::size_t n_procs, Endpoint& lower);

  /// Wire the protocol (constructed after this node, since the protocol's
  /// Endpoint is this node).
  /// \pre called exactly once, before any deliver()/request_catch_up().
  void set_protocol(BufferingProtocol& proto) { proto_ = &proto; }
  void set_checkpoint_hook(CheckpointHook hook) { checkpoint_ = std::move(hook); }

  // -- Endpoint (protocol → world): log own writes, pass through ------------

  /// Logs the outgoing WriteUpdate into its sender lane, then forwards the
  /// shared payload to the lower endpoint.  \post the write is servable to
  /// restarting peers even if every network copy is lost.
  void broadcast(Payload payload) override;
  /// Pass-through for targeted sends (partial replication's meta-only
  /// copies); full-update sends are logged like broadcasts.
  void send(ProcessId to, Payload payload) override;

  // -- MessageSink (world → protocol): log foreign writes, handle catch-up --

  /// Routes one decoded message: WriteUpdates are logged then fed to the
  /// protocol; CatchUpRequest/CatchUpReply run the anti-entropy exchange.
  /// Triggers the checkpoint hook after every state mutation.
  /// \pre set_protocol() has been called.
  void deliver(ProcessId from, std::span<const std::uint8_t> bytes) override;

  /// Broadcast a CatchUpRequest carrying the received watermarks — the
  /// restart path (also usable after a long partition heals).
  /// \pre set_protocol() has been called (replies will feed it).
  /// \post one request per peer is in flight; replies re-enter via deliver().
  void request_catch_up();

  /// seen[u] = length of the contiguous prefix of p_u's writes in the log.
  [[nodiscard]] VectorClock seen() const;

  // -- checkpoint of the log -------------------------------------------------

  /// Serializes the per-sender write-update log.  Pure observer.
  void snapshot(ByteWriter& w) const;
  /// Restores onto a freshly constructed node for the same (self, n_procs)
  /// topology.  Returns false on malformed input (node must be discarded).
  [[nodiscard]] bool restore(ByteReader& r);

  /// Counters since construction/restore (stats are not checkpointed —
  /// harnesses sum them across incarnations).
  [[nodiscard]] const RecoveryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t log_entries() const noexcept;

 private:
  void log_update(const WriteUpdate& m);
  void handle_request(const CatchUpRequest& req);
  void handle_reply(const CatchUpReply& rep);
  void forward_to_protocol(const WriteUpdate& m);
  void checkpoint();

  ProcessId self_;
  std::size_t n_procs_;
  Endpoint* lower_;
  BufferingProtocol* proto_ = nullptr;
  CheckpointHook checkpoint_;
  /// log_[u][k-1] = p_u's k-th write.  Slots with write_seq == 0 are holes
  /// (non-FIFO arrival); for partial replication the slot keeps the best
  /// copy seen (a full copy replaces a metadata-only one, never vice versa).
  std::vector<std::vector<WriteUpdate>> log_;
  RecoveryStats stats_;
};

/// Observer adapter that forwards each receipt/apply/skip event for a given
/// (process, write) at most once, and send events at most once per write.
/// Under crash recovery the same update can legitimately reach a process
/// twice (catch-up reply + ARQ retransmission whose ACK died with the
/// crash); the protocol absorbs the duplicate, and this filter keeps the
/// recorded trace — the input to the checker, auditor, and determinism
/// comparisons — free of the echo.  Return events pass through untouched
/// (every read is a distinct operation).
///
/// Thread-safe (an internal mutex guards the seen-set), so the same filter
/// serves the single-threaded simulator and the threaded cluster.
class ReplayFilterObserver final : public ProtocolObserver {
 public:
  explicit ReplayFilterObserver(ProtocolObserver& target) : target_(&target) {}

  void on_send(ProcessId at, const WriteUpdate& m) override;
  void on_receipt(ProcessId at, const WriteUpdate& m) override;
  void on_apply(ProcessId at, WriteId w, bool delayed) override;
  void on_return(ProcessId at, VarId x, Value v, WriteId from) override;
  void on_skip(ProcessId at, WriteId w, WriteId by) override;

  /// Pre-populate the seen-set without forwarding anything: the durable-boot
  /// path replays spilled events into the recorder directly, then preseeds
  /// the filter so a live redelivery of the same (kind, at, write) — e.g. an
  /// ARQ retransmission whose ACK died with the process — is suppressed.
  /// Kinds match the internal keying: 0 send, 1 receipt, 2 apply, 3 skip.
  void preseed(std::uint8_t kind, ProcessId at, WriteId w);

  /// While muted, EVERY event (returns included) is dropped and counted as
  /// suppressed — used while re-executing already-spilled script operations
  /// to rebuild in-memory protocol state without re-recording them.
  void set_muted(bool muted);

  [[nodiscard]] std::uint64_t suppressed() const;

 private:
  using Key = std::tuple<std::uint8_t, ProcessId, ProcessId, SeqNo>;
  [[nodiscard]] bool first(std::uint8_t kind, ProcessId at, WriteId w);
  [[nodiscard]] bool muted();

  ProtocolObserver* target_;
  mutable std::mutex mu_;
  std::set<Key> seen_;
  std::uint64_t suppressed_ = 0;
  bool muted_ = false;
};

}  // namespace dsm
