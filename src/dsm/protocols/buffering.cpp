#include "dsm/protocols/buffering.h"

#include <algorithm>
#include <utility>

#include "dsm/common/contracts.h"

namespace dsm {

BufferingProtocol::BufferingProtocol(ProcessId self, std::size_t n_procs,
                                     std::size_t n_vars, Endpoint& endpoint,
                                     ProtocolObserver& observer,
                                     bool writing_semantics, bool convergent)
    : CausalProtocol(self, n_procs, n_vars, endpoint, observer),
      applied_(n_procs),
      by_sender_(n_procs),
      watch_(n_procs),
      ws_(writing_semantics),
      convergent_(convergent),
      lww_key_(n_vars, {0, 0}) {}

void BufferingProtocol::set_reference_drain(bool on) {
  DSM_REQUIRE(stats_.messages_received == 0);
  DSM_REQUIRE(stats_.writes_issued == 0);
  DSM_REQUIRE(pending_count() == 0);
  reference_drain_ = on;
}

std::size_t BufferingProtocol::pending_count() const {
  return reference_drain_ ? pending_.size() : registry_.size();
}

bool BufferingProtocol::wins_arbitration(VarId x, const VectorClock& clock,
                                         ProcessId writer) {
  if (!convergent_) return true;
  // ⊥ has key (0,·); any write's clock-sum is ≥ 1, so first writes always
  // install.  sum() grows strictly along ↦co (Theorem 1), hence the order
  // extends causality and the outcome is identical at every replica.
  return std::make_pair(clock.sum(), writer) > lww_key_[x];
}

void BufferingProtocol::record_winner(VarId x, const VectorClock& clock,
                                      ProcessId writer) {
  if (convergent_) lww_key_[x] = {clock.sum(), writer};
}

bool BufferingProtocol::is_stale(const WriteUpdate& m) const {
  return applied_[m.sender] >= m.write_seq;
}

bool BufferingProtocol::can_apply(const WriteUpdate& m) const {
  const ProcessId u = m.sender;
  DSM_REQUIRE(u < n_procs_);
  DSM_REQUIRE(m.clock.size() == n_procs_);
  DSM_REQUIRE(m.write_seq >= 1);

  // First conjunct: sender progress.  Without writing semantics the message
  // must be the very next write of u; with it, the gap may lie inside the
  // superseded run.  Clamp the sender-declared run defensively.
  const std::uint64_t run = ws_ ? std::min<std::uint64_t>(m.run, m.write_seq - 1) : 0;
  if (applied_[u] + 1 + run < m.write_seq) return false;
  if (is_stale(m)) return false;

  // Second conjunct: every foreign causal dependency already applied.
  for (ProcessId t = 0; t < n_procs_; ++t) {
    if (t == u) continue;
    if (m.clock[t] > applied_[t]) return false;
  }
  return true;
}

std::uint64_t BufferingProtocol::enabling_deficit(const WriteUpdate& m) const {
  const ProcessId u = m.sender;
  const std::uint64_t run = ws_ ? std::min<std::uint64_t>(m.run, m.write_seq - 1) : 0;
  std::uint64_t missing = 0;
  if (applied_[u] + 1 + run < m.write_seq)
    missing += m.write_seq - 1 - run - applied_[u];
  for (ProcessId t = 0; t < n_procs_; ++t) {
    if (t == u) continue;
    if (m.clock[t] > applied_[t]) missing += m.clock[t] - applied_[t];
  }
  return missing;
}

void BufferingProtocol::on_message(ProcessId from,
                                   std::span<const std::uint8_t> bytes) {
  auto decoded = decode_message(bytes);
  DSM_REQUIRE(decoded.has_value());
  auto* update = std::get_if<WriteUpdate>(&*decoded);
  DSM_REQUIRE(update != nullptr);
  DSM_REQUIRE(update->sender == from);

  ++stats_.messages_received;
  observer_->on_receipt(self_, *update);

  if (is_stale(*update)) {
    // Already superseded by a writing-semantics jump; the skip itself was
    // reported when the jump happened.
    ++stats_.stale_discards;
    return;
  }
  if (can_apply(*update)) {
    apply_update(*update, /*delayed=*/false);
    return;
  }
  // Write delay (Definition 3): an enabling event of apply(w) has not yet
  // occurred at this process, so the message is buffered.
  ++stats_.delayed_writes;
  if (reference_drain_) {
    pending_.push_back(std::move(*update));
    track_peak();
    if (instr_ != nullptr)
      instr_->on_update_buffered(pending_.size(),
                                 enabling_deficit(pending_.back()));
  } else {
    buffer_indexed(std::move(*update));
  }
}

void BufferingProtocol::apply_events(const WriteUpdate& m, bool delayed) {
  const ProcessId u = m.sender;

  // Writing semantics: everything in (Apply[u], write_seq) is superseded by
  // this message — logically applied immediately before it.
  for (SeqNo k = applied_[u] + 1; k < m.write_seq; ++k) {
    ++stats_.skipped_writes;
    observer_->on_skip(self_, WriteId{u, k}, WriteId{u, m.write_seq});
  }

  applied_[u] = m.write_seq;
  // Partial replication: metadata-only copies advance the counters (the
  // Fig. 5 wait condition needs them) but install no value.  Convergent
  // mode additionally suppresses values outranked by the current holder.
  bool installed = false;
  if (!m.meta_only && wins_arbitration(m.var, m.clock, u)) {
    store(m.var, m.value, WriteId{u, m.write_seq});
    record_winner(m.var, m.clock, u);
    installed = true;
  }
  post_apply(m, installed);
  ++stats_.remote_applies;
  observer_->on_apply(self_, WriteId{u, m.write_seq}, delayed);
}

void BufferingProtocol::apply_update(const WriteUpdate& m, bool delayed) {
  apply_events(m, delayed);
  if (reference_drain_) {
    drain_reference();  // recurses back into apply_update, like the seed
  } else {
    drain_worklist(m.sender);
  }
}

// -- indexed engine ----------------------------------------------------------

void BufferingProtocol::buffer_indexed(WriteUpdate m) {
  const std::uint64_t stamp = next_stamp_++;
  auto& fifo = by_sender_[m.sender];
  // A second pending copy of the same write is the only way a message can
  // turn stale later without writing semantics — remember we saw one so
  // purge passes stop being skippable.
  if (!duplicate_seen_ && fifo.contains(m.write_seq)) duplicate_seen_ = true;
  fifo.emplace(m.write_seq, stamp);
  const auto [it, inserted] = registry_.emplace(stamp, std::move(m));
  DSM_ENSURE(inserted);
  track_peak();
  watch_or_ready(stamp, it->second);
  if (instr_ != nullptr)
    instr_->on_update_buffered(registry_.size(),
                               enabling_deficit(it->second));
}

void BufferingProtocol::watch_or_ready(std::uint64_t stamp,
                                       const WriteUpdate& m) {
  const ProcessId u = m.sender;
  const std::uint64_t run = ws_ ? std::min<std::uint64_t>(m.run, m.write_seq - 1) : 0;
  // First failing conjunct of the Fig. 5 wait condition, expressed as "the
  // apply counter of process t must reach `threshold`".  Registering under
  // one condition suffices: when it fires the message is re-examined and, if
  // still blocked, re-registered under the next failing conjunct.
  if (applied_[u] + 1 + run < m.write_seq) {
    watch_[u][m.write_seq - 1 - run].push_back(stamp);
    return;
  }
  for (ProcessId t = 0; t < n_procs_; ++t) {
    if (t == u) continue;
    if (m.clock[t] > applied_[t]) {
      watch_[t][m.clock[t]].push_back(stamp);
      return;
    }
  }
  ready_.push(stamp);
}

void BufferingProtocol::wake(ProcessId t) {
  auto& buckets = watch_[t];
  while (!buckets.empty() && buckets.begin()->first <= applied_[t]) {
    std::vector<std::uint64_t> stamps = std::move(buckets.begin()->second);
    buckets.erase(buckets.begin());
    for (const std::uint64_t stamp : stamps) {
      const auto it = registry_.find(stamp);
      if (it == registry_.end()) continue;  // applied or purged meanwhile
      ++stats_.drain_scans;
      watch_or_ready(stamp, it->second);
    }
  }
}

void BufferingProtocol::purge_pass(ProcessId dirty) {
  // Without writing semantics, staleness needs a duplicate delivery; until
  // one is seen (and outside the post-restore and own-write-collision
  // windows) the pass is a provable no-op.
  if (!ws_ && !duplicate_seen_ && !purge_all_ && !self_dirty_) {
    ++stats_.purges_avoided;
    return;
  }
  const std::size_t before = registry_.size();
  if (purge_all_) {
    purge_all_ = false;
    self_dirty_ = false;
    for (ProcessId t = 0; t < n_procs_; ++t) purge_sender(t);
  } else {
    purge_sender(dirty);
    if (self_dirty_) {
      self_dirty_ = false;
      if (self_ != dirty) purge_sender(self_);
    }
  }
  if (instr_ != nullptr && registry_.size() != before)
    instr_->on_buffer_drained(registry_.size());
}

void BufferingProtocol::purge_sender(ProcessId t) {
  // Stale entries of t are exactly the seq-ordered prefix ≤ applied_[t].
  auto& fifo = by_sender_[t];
  while (!fifo.empty() && fifo.begin()->first <= applied_[t]) {
    ++stats_.drain_scans;
    registry_.erase(fifo.begin()->second);
    fifo.erase(fifo.begin());
    ++stats_.stale_discards;
  }
}

std::optional<WriteUpdate> BufferingProtocol::take_ready() {
  while (!ready_.empty()) {
    const std::uint64_t stamp = ready_.top();
    ready_.pop();
    const auto it = registry_.find(stamp);
    if (it == registry_.end()) continue;  // applied or purged since push
    ++stats_.drain_scans;
    WriteUpdate m = std::move(it->second);
    registry_.erase(it);
    auto& fifo = by_sender_[m.sender];
    for (auto f = fifo.lower_bound(m.write_seq);
         f != fifo.end() && f->first == m.write_seq; ++f) {
      if (f->second == stamp) {
        fifo.erase(f);
        break;
      }
    }
    if (instr_ != nullptr) instr_->on_buffer_drained(registry_.size());
    // Ready entries stay applicable: counters only advance, and the one way
    // applicability regresses — staleness — was purged this iteration.
    DSM_ENSURE(can_apply(m));
    return m;
  }
  return std::nullopt;
}

void BufferingProtocol::drain_worklist(ProcessId dirty) {
  // Iterative form of the seed's apply→drain recursion: after each apply,
  // purge the just-applied sender's superseded prefix, wake only the
  // messages whose first missing enabling event was that sender's progress,
  // and pop the earliest-arrived applicable message.  Work is proportional
  // to messages actually enabled, and chain depth costs no stack.
  for (;;) {
    purge_pass(dirty);
    wake(dirty);
    auto next = take_ready();
    if (!next) return;
    apply_events(*next, /*delayed=*/true);
    dirty = next->sender;
  }
}

// -- reference engine (the seed's algorithm, kept as differential baseline) --

void BufferingProtocol::drain_reference() {
  // Fixpoint pass over the buffer: each apply can enable further applies
  // (and, with writing semantics, render buffered messages stale).
  bool progress = true;
  while (progress) {
    progress = false;
    purge_stale_reference();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      ++stats_.drain_scans;
      if (can_apply(pending_[i])) {
        const WriteUpdate m = std::move(pending_[i]);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        if (instr_ != nullptr) instr_->on_buffer_drained(pending_.size());
        // Note: apply_update recurses into drain(); the recursion terminates
        // because every apply strictly increases sum(applied_).  Return
        // afterwards — the nested drain already reached the fixpoint.
        apply_update(m, /*delayed=*/true);
        return;
      }
    }
  }
}

void BufferingProtocol::purge_stale_reference() {
  const std::size_t before = pending_.size();
  std::erase_if(pending_, [this](const WriteUpdate& m) {
    ++stats_.drain_scans;
    if (is_stale(m)) {
      ++stats_.stale_discards;
      return true;
    }
    return false;
  });
  if (instr_ != nullptr && pending_.size() != before)
    instr_->on_buffer_drained(pending_.size());
}

void BufferingProtocol::track_peak() {
  stats_.peak_pending = std::max<std::uint64_t>(stats_.peak_pending,
                                                pending_count());
}

bool BufferingProtocol::apply_own_write(VarId x, Value v, SeqNo seq,
                                        const VectorClock& clock) {
  DSM_REQUIRE(seq == applied_[self_] + 1);
  applied_[self_] = seq;
  bool installed = false;
  if (wins_arbitration(x, clock, self_)) {
    store(x, v, WriteId{self_, seq});
    record_winner(x, clock, self_);
    installed = true;
  }
  observer_->on_apply(self_, WriteId{self_, seq}, /*delayed=*/false);
  if (!reference_drain_) {
    // The seed does not drain here, but its next drain rescans everything —
    // the index must not strand messages blocked on clock[self].  Move them
    // to ready now; the next drain pops them.  Post-restore catch-up can
    // leave our own pre-crash writes pending, in which case this counter
    // advance may have made one stale: flag self for the next purge pass.
    if (!by_sender_[self_].empty()) self_dirty_ = true;
    wake(self_);
  }
  return installed;
}

void BufferingProtocol::snapshot(ByteWriter& w) const {
  CausalProtocol::snapshot(w);
  w.u64_vec(applied_.components());
  w.u64(pending_count());
  if (reference_drain_) {
    for (const WriteUpdate& m : pending_) m.encode(w);
  } else {
    // registry_ iterates in arrival-stamp order == the seed's insertion
    // order: the checkpoint byte format is unchanged.
    for (const auto& [stamp, m] : registry_) m.encode(w);
  }
  w.u64(lww_key_.size());
  for (const auto& [sum, writer] : lww_key_) {
    w.u64(sum);
    w.u32(writer);
  }
  w.u8(have_prev_write_ ? 1 : 0);
  w.u32(prev_var_);
  w.u64_vec(prev_clock_.components());
  w.u64(prev_run_);
}

bool BufferingProtocol::restore(ByteReader& r) {
  if (!CausalProtocol::restore(r)) return false;
  auto applied = r.u64_vec();
  if (!applied || applied->size() != n_procs_) return false;
  applied_ = VectorClock{std::move(*applied)};
  const auto n_pending = r.u64();
  if (!n_pending || *n_pending > (1ULL << 24)) return false;
  pending_.clear();
  registry_.clear();
  ready_ = {};
  for (auto& fifo : by_sender_) fifo.clear();
  for (auto& buckets : watch_) buckets.clear();
  duplicate_seen_ = false;
  self_dirty_ = false;
  for (std::uint64_t i = 0; i < *n_pending; ++i) {
    auto m = WriteUpdate::decode(r);
    if (!m || m->clock.size() != n_procs_) return false;
    if (reference_drain_) {
      pending_.push_back(std::move(*m));
    } else {
      const std::uint64_t stamp = next_stamp_++;
      auto& fifo = by_sender_[m->sender];
      if (!duplicate_seen_ && fifo.contains(m->write_seq))
        duplicate_seen_ = true;
      fifo.emplace(m->write_seq, stamp);
      const auto [it, inserted] = registry_.emplace(stamp, std::move(*m));
      if (!inserted) return false;
      watch_or_ready(stamp, it->second);
    }
  }
  // A restored buffer may hold entries already superseded at checkpoint time
  // whose duplicates are long gone — duplicate_seen_ cannot prove their
  // absence from the snapshot alone, so the first post-restore purge pass
  // sweeps every sender.
  purge_all_ = !reference_drain_;
  const auto n_keys = r.u64();
  if (!n_keys || *n_keys != lww_key_.size()) return false;
  for (auto& key : lww_key_) {
    const auto sum = r.u64();
    const auto writer = r.u32();
    if (!sum || !writer) return false;
    key = {*sum, *writer};
  }
  const auto have_prev = r.u8();
  const auto prev_var = r.u32();
  auto prev_clock = r.u64_vec();
  const auto prev_run = r.u64();
  if (!have_prev || !prev_var || !prev_clock || !prev_run) return false;
  have_prev_write_ = *have_prev != 0;
  prev_var_ = *prev_var;
  prev_clock_ = VectorClock{std::move(*prev_clock)};
  prev_run_ = *prev_run;
  return true;
}

std::uint64_t BufferingProtocol::next_run(VarId x, const VectorClock& clock) {
  if (!ws_) return 0;
  std::uint64_t run = 0;
  if (have_prev_write_ && prev_var_ == x) {
    bool foreign_equal = true;
    for (ProcessId t = 0; t < n_procs_; ++t) {
      if (t == self_) continue;
      if (clock[t] != prev_clock_[t]) {
        foreign_equal = false;
        break;
      }
    }
    // No foreign dependency entered between the previous write and this one,
    // and both hit the same variable: the previous write is superseded.
    if (foreign_equal) run = prev_run_ + 1;
  }
  have_prev_write_ = true;
  prev_var_ = x;
  prev_clock_ = clock;
  prev_run_ = run;
  return run;
}

}  // namespace dsm
