// optcm — OptP: the paper's write-delay-optimal protocol (Section 4).
//
// Data structures, exactly as Section 4.1 (subscripts for the owning process
// omitted, as in the paper):
//
//   Apply[1..n]       — Apply[j] = number of writes issued by p_j and applied
//                       here (held in BufferingProtocol::applied_).
//   Write_co[1..n]    — the vector associated with each outgoing write;
//                       Write_co[j] = k means p_j's k-th write ↦co-precedes
//                       this write.  Proven to *characterize* ↦co
//                       (Theorems 1–2).
//   LastWriteOn[1..m] — LastWriteOn[h] = Write_co of the last write applied
//                       to x_h here.
//
// WRITE(x_h, v)  (Fig. 4):  Write_co[i]++;  send (x_h, v, Write_co) to Π−p_i;
//   apply locally;  Apply[i]++;  LastWriteOn[h] := Write_co.
//
// READ(x_h)  (Fig. 5):  Write_co := max(Write_co, LastWriteOn[h]);  return
//   the local copy.  This merge-on-READ is the whole trick: Write_co picks up
//   a foreign write's causal past only when the write's value is actually
//   read (↦ro), never merely because its message was applied — so Write_co
//   tracks ↦co instead of Lamport's →, and no false causality arises.
//
// On receipt of m = (x_h, v, W) from p_u (Fig. 5, synchronization thread):
//   wait until  ∀t≠u : W[t] ≤ Apply[t]  ∧  Apply[u] = W[u] − 1;
//   then  apply;  Apply[u]++;  LastWriteOn[h] := W.
//
// The optional writing-semantics extension (paper footnote 8) is inherited
// from BufferingProtocol; construct with writing_semantics = true for the
// "OptP-WS" variant.

#pragma once

#include "dsm/protocols/buffering.h"

namespace dsm {

class OptP : public BufferingProtocol {
 public:
  OptP(ProcessId self, std::size_t n_procs, std::size_t n_vars,
       Endpoint& endpoint, ProtocolObserver& observer,
       bool writing_semantics = false, std::size_t write_blob_size = 0,
       bool convergent = false);

  void write(VarId x, Value v) override;
  ReadResult read(VarId x) override;

  [[nodiscard]] std::string name() const override;

  /// The current local Write_co vector (exposed for the Figure 6 renderer
  /// and the characterization tests).
  [[nodiscard]] const VectorClock& write_co() const noexcept { return write_co_; }

  /// LastWriteOn[h] (exposed for tests).
  [[nodiscard]] const VectorClock& last_write_on(VarId x) const;

  void snapshot(ByteWriter& w) const override;
  [[nodiscard]] bool restore(ByteReader& r) override;

 protected:
  /// Fig. 4 lines 1–2 minus the transmission: tick Write_co, build the
  /// update (with payload blob) and announce the send to the observer.
  /// Returns a reference to a reused member (clock and blob buffers keep
  /// their capacity across writes); valid until the next prepare_write.
  [[nodiscard]] const WriteUpdate& prepare_write(VarId x, Value v);

  /// Fig. 4 lines 3–5: local apply and bookkeeping.
  void finish_write(const WriteUpdate& m);

 private:
  void post_apply(const WriteUpdate& m, bool installed) override;

  VectorClock write_co_;
  std::vector<VectorClock> last_write_on_;
  std::size_t write_blob_size_;
  WriteUpdate outgoing_;  ///< prepare_write scratch (buffer reuse)
};

}  // namespace dsm
