// optcm — protocol registry: construct any protocol in the library by kind.
//
// Benches and tests sweep ProtocolKind to compare protocols on identical
// workloads; the registry is the single place that knows how to instantiate
// each one.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dsm/protocols/protocol.h"
#include "dsm/protocols/replication.h"
#include "dsm/protocols/subscription.h"

namespace dsm {

class ObjectSchema;  // dsm/objects/schema.h; carried opaquely here

enum class ProtocolKind : std::uint8_t {
  kOptP,         ///< the paper's protocol (Section 4)
  kOptPWs,       ///< OptP + writing semantics (paper footnote 8)
  kAnbkh,        ///< Ahamad et al. baseline [1]
  kAnbkhWs,      ///< ANBKH + receiver-side writing semantics ([2]/[14] spirit)
  kTokenWs,      ///< Jiménez et al. token protocol [7]
  kOptPPartial,  ///< OptP over partial replication (after [14]); needs a
                 ///< ProtocolConfig::replication map and replica-aware
                 ///< workloads, so it is NOT in all_protocol_kinds()
  kOptPConv,     ///< OptP + convergent (LWW-arbitrated) causal memory: the
                 ///< "causal+" strengthening — replicas agree on concurrent
                 ///< writes under a total order extending ↦co
  kOptPSharded,  ///< subscription-routed OptP (after Xiang & Vaidya): writes
                 ///< unicast to subs(x) only; needs a
                 ///< ProtocolConfig::subscription map and subscription-aware
                 ///< workloads, so it is NOT in all_protocol_kinds()
};

[[nodiscard]] const char* to_string(ProtocolKind k) noexcept;

/// Parses "optp" / "optp-ws" / "anbkh" / "anbkh-ws" / "token-ws".
[[nodiscard]] std::optional<ProtocolKind> parse_protocol(std::string_view name);

/// All kinds, in comparison-table order.
[[nodiscard]] const std::vector<ProtocolKind>& all_protocol_kinds();

/// The kinds that belong to class 𝒫 (every write applied at every process) —
/// the set for which Definitions 3–5 apply verbatim.
[[nodiscard]] const std::vector<ProtocolKind>& class_p_protocol_kinds();

struct ProtocolConfig {
  /// TokenWs only: circulation cap so simulations terminate.
  std::uint64_t token_max_rounds = 1'000'000;
  /// OptP family: bytes of application payload attached to every full write
  /// update (models large objects; see PartialOptP).
  std::size_t write_blob_size = 0;
  /// kOptPPartial: which process replicates which variable.  Defaults to
  /// full replication when unset.
  std::shared_ptr<const ReplicationMap> replication;
  /// kOptPSharded: which process subscribes to which variable.  Defaults to
  /// full subscription when unset (the protocol then degenerates to OptP).
  std::shared_ptr<const SubscriptionMap> subscription;
  /// Buffering protocols: run the seed's O(|pending|²·n) linear drain
  /// instead of the dependency-indexed one — the differential-test baseline
  /// and the "before" side of BENCH_core.json (docs/PERF.md).  Ignored by
  /// kTokenWs, which has no pending buffer of this shape.
  bool reference_drain = false;
  /// Typed objects (dsm/objects): which sequential spec governs each
  /// variable.  When set, the harnesses attach an ObjectStore to the run's
  /// observer chain and scripts may carry typed steps.  Unset (default) =
  /// plain registers everywhere; nothing typed is allocated or encoded.
  /// Riding in the config keeps sim, thread and forked process tiers on one
  /// schema for free.
  std::shared_ptr<const ObjectSchema> objects;
};

[[nodiscard]] std::unique_ptr<CausalProtocol> make_protocol(
    ProtocolKind kind, ProcessId self, std::size_t n_procs, std::size_t n_vars,
    Endpoint& endpoint, ProtocolObserver& observer,
    const ProtocolConfig& config = {});

}  // namespace dsm
