// optcm — replication maps for partial replication (after Raynal–Singhal
// [14], the paper's reference for partially replicated causal objects).
//
// A ReplicationMap fixes, per variable, the set of processes that hold a
// copy.  PartialOptP ships full updates (value + payload blob) to replicas
// and metadata-only updates to everyone else, so the causal bookkeeping —
// the Apply counters the Fig. 5 wait condition checks — stays global while
// the data plane is partial.  The map is immutable after construction
// (membership changes are outside the paper's model).

#pragma once

#include <memory>
#include <vector>

#include "dsm/common/contracts.h"
#include "dsm/common/types.h"

namespace dsm {

class ReplicationMap {
 public:
  /// Every process replicates every variable (degenerates to full
  /// replication; PartialOptP then behaves exactly like OptP).
  [[nodiscard]] static ReplicationMap full(std::size_t n_procs,
                                           std::size_t n_vars) {
    ReplicationMap map(n_procs, n_vars);
    for (auto& row : map.holds_) row.assign(n_procs, true);
    return map;
  }

  /// Variable v lives on `factor` consecutive processes starting at
  /// v mod n_procs (chained declustering).  factor is clamped to n_procs.
  [[nodiscard]] static ReplicationMap chained(std::size_t n_procs,
                                              std::size_t n_vars,
                                              std::size_t factor) {
    DSM_REQUIRE(factor >= 1);
    ReplicationMap map(n_procs, n_vars);
    const std::size_t k = std::min(factor, n_procs);
    for (VarId v = 0; v < n_vars; ++v) {
      for (std::size_t i = 0; i < k; ++i) {
        map.holds_[v][(v + i) % n_procs] = true;
      }
    }
    return map;
  }

  [[nodiscard]] bool is_replica(VarId var, ProcessId proc) const {
    DSM_REQUIRE(var < holds_.size());
    DSM_REQUIRE(proc < n_procs_);
    return holds_[var][proc];
  }

  [[nodiscard]] std::vector<ProcessId> replicas(VarId var) const {
    DSM_REQUIRE(var < holds_.size());
    std::vector<ProcessId> out;
    for (ProcessId p = 0; p < n_procs_; ++p) {
      if (holds_[var][p]) out.push_back(p);
    }
    return out;
  }

  /// A variable this process replicates (its "home" shard); used by
  /// replication-aware workload generation.
  [[nodiscard]] std::vector<VarId> vars_of(ProcessId proc) const {
    std::vector<VarId> out;
    for (VarId v = 0; v < holds_.size(); ++v) {
      if (holds_[v][proc]) out.push_back(v);
    }
    return out;
  }

  [[nodiscard]] std::size_t n_procs() const noexcept { return n_procs_; }
  [[nodiscard]] std::size_t n_vars() const noexcept { return holds_.size(); }

  /// Average copies per variable — the storage factor.
  [[nodiscard]] double mean_factor() const {
    std::size_t total = 0;
    for (const auto& row : holds_) {
      for (const bool b : row) total += b;
    }
    return holds_.empty()
               ? 0.0
               : static_cast<double>(total) / static_cast<double>(holds_.size());
  }

 private:
  ReplicationMap(std::size_t n_procs, std::size_t n_vars)
      : n_procs_(n_procs), holds_(n_vars, std::vector<bool>(n_procs, false)) {
    DSM_REQUIRE(n_procs >= 1);
    DSM_REQUIRE(n_vars >= 1);
  }

  std::size_t n_procs_;
  std::vector<std::vector<bool>> holds_;  // [var][proc]
};

}  // namespace dsm
