#include "dsm/protocols/protocol.h"

#include "dsm/common/contracts.h"

namespace dsm {

CausalProtocol::CausalProtocol(ProcessId self, std::size_t n_procs,
                               std::size_t n_vars, Endpoint& endpoint,
                               ProtocolObserver& observer)
    : self_(self),
      n_procs_(n_procs),
      n_vars_(n_vars),
      endpoint_(&endpoint),
      observer_(&observer),
      copies_(n_vars) {
  DSM_REQUIRE(n_procs >= 1);
  DSM_REQUIRE(n_vars >= 1);
  DSM_REQUIRE(self < n_procs);
}

void CausalProtocol::write_typed(VarId x, std::uint8_t spec,
                                 std::uint8_t opcode, Value arg, Value arg2) {
  pending_typed_ = true;
  pending_spec_ = spec;
  pending_opcode_ = opcode;
  pending_arg2_ = arg2;
  write(x, arg);
  // A protocol that supports typed mutations consumes the trailer via
  // stamp_typed while building its outgoing update; reaching here with the
  // trailer still pending means the typed op would have propagated untyped.
  DSM_REQUIRE(!pending_typed_);
}

ReadResult CausalProtocol::peek(VarId x) const {
  DSM_REQUIRE(x < n_vars_);
  return copies_[x];
}

void CausalProtocol::store(VarId x, Value value, WriteId writer) {
  DSM_REQUIRE(x < n_vars_);
  copies_[x] = ReadResult{value, writer};
}

namespace {

// Encode into the adopted scratch, seal an exact-size shared copy, reclaim
// the scratch.  One allocation per payload regardless of receiver count.
template <typename Msg>
Payload seal_payload(const Msg& m, std::vector<std::uint8_t>& scratch) {
  ByteWriter w{std::move(scratch)};
  encode_message(m, w);
  Payload p = make_payload(std::vector<std::uint8_t>(w.buffer().begin(),
                                                     w.buffer().end()));
  scratch = std::move(w).take();
  return p;
}

}  // namespace

Payload CausalProtocol::encode_payload(const Message& m) {
  return seal_payload(m, encode_scratch_);
}

Payload CausalProtocol::encode_payload(const WriteUpdate& m) {
  return seal_payload(m, encode_scratch_);
}

void CausalProtocol::snapshot(ByteWriter& w) const {
  w.u64(copies_.size());
  for (const ReadResult& copy : copies_) {
    w.i64(copy.value);
    w.u32(copy.writer.proc);
    w.u64(copy.writer.seq);
  }
}

bool CausalProtocol::restore(ByteReader& r) {
  const auto count = r.u64();
  if (!count || *count != copies_.size()) return false;
  for (ReadResult& copy : copies_) {
    const auto value = r.i64();
    const auto proc = r.u32();
    const auto seq = r.u64();
    if (!value || !proc || !seq) return false;
    copy.value = *value;
    copy.writer = WriteId{*proc, *seq};
  }
  return true;
}

}  // namespace dsm
