#include "dsm/protocols/protocol.h"

#include "dsm/common/contracts.h"

namespace dsm {

CausalProtocol::CausalProtocol(ProcessId self, std::size_t n_procs,
                               std::size_t n_vars, Endpoint& endpoint,
                               ProtocolObserver& observer)
    : self_(self),
      n_procs_(n_procs),
      n_vars_(n_vars),
      endpoint_(&endpoint),
      observer_(&observer),
      copies_(n_vars) {
  DSM_REQUIRE(n_procs >= 1);
  DSM_REQUIRE(n_vars >= 1);
  DSM_REQUIRE(self < n_procs);
}

ReadResult CausalProtocol::peek(VarId x) const {
  DSM_REQUIRE(x < n_vars_);
  return copies_[x];
}

void CausalProtocol::store(VarId x, Value value, WriteId writer) {
  DSM_REQUIRE(x < n_vars_);
  copies_[x] = ReadResult{value, writer};
}

}  // namespace dsm
