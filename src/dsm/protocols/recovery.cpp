#include "dsm/protocols/recovery.h"

#include <algorithm>

#include "dsm/common/contracts.h"

namespace dsm {

RecoveryNode::RecoveryNode(ProcessId self, std::size_t n_procs, Endpoint& lower)
    : self_(self), n_procs_(n_procs), lower_(&lower), log_(n_procs) {
  DSM_REQUIRE(self < n_procs);
}

void RecoveryNode::checkpoint() {
  if (checkpoint_) checkpoint_();
}

void RecoveryNode::log_update(const WriteUpdate& m) {
  if (m.write_seq == 0 || m.sender >= n_procs_) return;
  std::vector<WriteUpdate>& lane = log_[m.sender];
  if (lane.size() < m.write_seq) lane.resize(m.write_seq);
  WriteUpdate& slot = lane[m.write_seq - 1];
  if (slot.write_seq == 0 || (slot.meta_only && !m.meta_only)) slot = m;
}

void RecoveryNode::broadcast(Payload payload) {
  auto decoded = decode_message(*payload);
  if (decoded) {
    if (const auto* update = std::get_if<WriteUpdate>(&*decoded)) {
      log_update(*update);
    }
  }
  lower_->broadcast(std::move(payload));
}

void RecoveryNode::send(ProcessId to, Payload payload) {
  auto decoded = decode_message(*payload);
  if (decoded) {
    if (const auto* update = std::get_if<WriteUpdate>(&*decoded)) {
      log_update(*update);
    }
  }
  lower_->send(to, std::move(payload));
}

VectorClock RecoveryNode::seen() const {
  VectorClock v(n_procs_);
  for (ProcessId u = 0; u < n_procs_; ++u) {
    std::uint64_t prefix = 0;
    while (prefix < log_[u].size() && log_[u][prefix].write_seq != 0) {
      ++prefix;
    }
    v[u] = prefix;
  }
  return v;
}

std::size_t RecoveryNode::log_entries() const noexcept {
  std::size_t n = 0;
  for (const auto& lane : log_) {
    for (const WriteUpdate& m : lane) {
      if (m.write_seq != 0) ++n;
    }
  }
  return n;
}

void RecoveryNode::request_catch_up() {
  ++stats_.requests_sent;
  lower_->broadcast(
      make_payload(encode_message(Message{CatchUpRequest{self_, seen()}})));
  checkpoint();
}

void RecoveryNode::forward_to_protocol(const WriteUpdate& m) {
  DSM_REQUIRE(proto_ != nullptr);
  // Re-framed as an ordinary WriteUpdate from its ORIGINAL sender: the
  // protocol's enabling condition is keyed on m.sender, and the relayed
  // message is byte-identical to what the sender broadcast.
  proto_->on_message(m.sender, encode_message(Message{m}));
}

void RecoveryNode::handle_request(const CatchUpRequest& req) {
  ++stats_.requests_received;
  DSM_REQUIRE(req.have.size() == n_procs_);

  CatchUpReply reply;
  reply.replier = self_;
  reply.have = seen();
  // Full copies first: if the requester replicates the variable, the value
  // installation must not lose the race to a metadata-only copy relayed by
  // a non-replica (partial replication; see docs/FAULTS.md).
  for (const bool want_full : {true, false}) {
    for (ProcessId u = 0; u < n_procs_; ++u) {
      const std::uint64_t floor = u < req.have.size() ? req.have[u] : 0;
      for (std::uint64_t k = floor; k < log_[u].size(); ++k) {
        const WriteUpdate& m = log_[u][k];
        if (m.write_seq == 0) continue;  // hole
        if (m.meta_only == want_full) continue;
        reply.writes.push_back(m);
      }
    }
  }

  Payload bytes = make_payload(encode_message(Message{reply}));
  stats_.writes_served += reply.writes.size();
  stats_.catch_up_bytes += bytes->size();
  ++stats_.replies_sent;
  lower_->send(req.requester, std::move(bytes));

  // Symmetric re-request: the request just proved the requester holds writes
  // we have never received (its watermarks exceed ours somewhere).  This is
  // how two processes whose crash windows overlapped repair each other.
  const VectorClock mine = seen();
  bool behind = false;
  for (ProcessId u = 0; u < n_procs_; ++u) {
    if (req.have[u] > mine[u]) {
      behind = true;
      break;
    }
  }
  if (behind) {
    ++stats_.requests_sent;
    lower_->send(req.requester, make_payload(encode_message(
                                    Message{CatchUpRequest{self_, mine}})));
  }
  checkpoint();
}

void RecoveryNode::handle_reply(const CatchUpReply& rep) {
  ++stats_.replies_received;
  for (const WriteUpdate& m : rep.writes) {
    log_update(m);
    ++stats_.writes_recovered;
    forward_to_protocol(m);
  }
  checkpoint();
}

void RecoveryNode::deliver(ProcessId from, std::span<const std::uint8_t> bytes) {
  auto decoded = decode_message(bytes);
  DSM_REQUIRE(decoded.has_value());
  if (const auto* update = std::get_if<WriteUpdate>(&*decoded)) {
    DSM_REQUIRE(update->sender == from);
    log_update(*update);
    DSM_REQUIRE(proto_ != nullptr);
    proto_->on_message(from, bytes);
    checkpoint();
    return;
  }
  if (const auto* req = std::get_if<CatchUpRequest>(&*decoded)) {
    DSM_REQUIRE(req->requester == from);
    handle_request(*req);
    return;
  }
  if (const auto* rep = std::get_if<CatchUpReply>(&*decoded)) {
    DSM_REQUIRE(rep->replier == from);
    handle_reply(*rep);
    return;
  }
  DSM_REQUIRE(false && "unexpected message type at a recovery node");
}

void RecoveryNode::snapshot(ByteWriter& w) const {
  w.u64(log_.size());
  for (const auto& lane : log_) {
    w.u64(lane.size());
    for (const WriteUpdate& m : lane) {
      w.u8(m.write_seq != 0 ? 1 : 0);
      if (m.write_seq != 0) m.encode(w);
    }
  }
}

bool RecoveryNode::restore(ByteReader& r) {
  const auto n = r.u64();
  if (!n || *n != log_.size()) return false;
  for (auto& lane : log_) {
    const auto len = r.u64();
    if (!len || *len > (1ULL << 24)) return false;
    lane.assign(static_cast<std::size_t>(*len), WriteUpdate{});
    for (WriteUpdate& slot : lane) {
      const auto valid = r.u8();
      if (!valid) return false;
      if (*valid != 0) {
        auto m = WriteUpdate::decode(r);
        if (!m) return false;
        slot = std::move(*m);
      }
    }
  }
  return true;
}

// -- ReplayFilterObserver -----------------------------------------------------

bool ReplayFilterObserver::first(std::uint8_t kind, ProcessId at, WriteId w) {
  const std::scoped_lock lock(mu_);
  const bool inserted = seen_.insert(Key{kind, at, w.proc, w.seq}).second;
  if (!inserted) ++suppressed_;
  return inserted;
}

bool ReplayFilterObserver::muted() {
  const std::scoped_lock lock(mu_);
  if (muted_) ++suppressed_;
  return muted_;
}

void ReplayFilterObserver::preseed(std::uint8_t kind, ProcessId at, WriteId w) {
  const std::scoped_lock lock(mu_);
  seen_.insert(Key{kind, at, w.proc, w.seq});
}

void ReplayFilterObserver::set_muted(bool muted) {
  const std::scoped_lock lock(mu_);
  muted_ = muted;
}

std::uint64_t ReplayFilterObserver::suppressed() const {
  const std::scoped_lock lock(mu_);
  return suppressed_;
}

void ReplayFilterObserver::on_send(ProcessId at, const WriteUpdate& m) {
  if (muted()) return;
  if (first(0, at, WriteId{m.sender, m.write_seq})) target_->on_send(at, m);
}

void ReplayFilterObserver::on_receipt(ProcessId at, const WriteUpdate& m) {
  if (muted()) return;
  if (first(1, at, WriteId{m.sender, m.write_seq})) target_->on_receipt(at, m);
}

void ReplayFilterObserver::on_apply(ProcessId at, WriteId w, bool delayed) {
  if (muted()) return;
  if (first(2, at, w)) target_->on_apply(at, w, delayed);
}

void ReplayFilterObserver::on_return(ProcessId at, VarId x, Value v,
                                     WriteId from) {
  if (muted()) return;
  target_->on_return(at, x, v, from);
}

void ReplayFilterObserver::on_skip(ProcessId at, WriteId w, WriteId by) {
  if (muted()) return;
  // Keyed on the skipped write only: a second skip of w (by a different
  // superseding write after redelivery) is still the same logical event.
  if (first(3, at, w)) target_->on_skip(at, w, by);
}

}  // namespace dsm
