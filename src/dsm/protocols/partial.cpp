#include "dsm/protocols/partial.h"

#include "dsm/common/contracts.h"

namespace dsm {

PartialOptP::PartialOptP(ProcessId self, std::size_t n_procs,
                         std::size_t n_vars, Endpoint& endpoint,
                         ProtocolObserver& observer,
                         std::shared_ptr<const ReplicationMap> replication,
                         bool writing_semantics, std::size_t write_blob_size)
    : OptP(self, n_procs, n_vars, endpoint, observer, writing_semantics,
           write_blob_size),
      replication_(std::move(replication)) {
  DSM_REQUIRE(replication_ != nullptr);
  DSM_REQUIRE(replication_->n_procs() == n_procs);
  DSM_REQUIRE(replication_->n_vars() == n_vars);
}

void PartialOptP::write(VarId x, Value v) {
  DSM_REQUIRE(replication_->is_replica(x, self_) &&
              "writes are restricted to the variable's replicas");
  const WriteUpdate& full = prepare_write(x, v);

  // Metadata-only twin for non-replicas: same clock, no value payload.
  WriteUpdate meta = full;
  meta.meta_only = true;
  meta.blob.clear();

  // Two shared payloads; each receiver gets a refcount, not a byte copy.
  const Payload full_bytes = encode_payload(full);
  const Payload meta_bytes = encode_payload(meta);
  for (ProcessId to = 0; to < n_procs_; ++to) {
    if (to == self_) continue;
    endpoint_->send(to, replication_->is_replica(x, to) ? full_bytes
                                                        : meta_bytes);
  }

  finish_write(full);
}

ReadResult PartialOptP::read(VarId x) {
  DSM_REQUIRE(replication_->is_replica(x, self_) &&
              "reads are restricted to the variable's replicas");
  return OptP::read(x);
}

}  // namespace dsm
