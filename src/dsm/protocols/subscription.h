// optcm — subscription maps for subscription-routed sharding (after Xiang &
// Vaidya, "Partial Replication: Causal Consistency, Lower Bounds and an
// Optimal Algorithm"; see PAPERS.md).
//
// A SubscriptionMap fixes, per variable, the set of processes *interested*
// in it.  Unlike ReplicationMap — which only trims the data plane while
// PartialOptP still broadcasts metadata to all n processes — a subscription
// map drives routing itself: ShardedOptP sends a write of x to subs(x) and
// to nobody else, so both the message count and the carried metadata scale
// with subscription size, not cluster size.  The map is immutable after
// construction (membership changes are outside the paper's model).
//
// Writer contract: a process may only read or write variables it subscribes
// to (enforced by ShardedOptP with DSM_REQUIRE, mirroring PartialOptP's
// replica contract).

#pragma once

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dsm/common/contracts.h"
#include "dsm/common/types.h"

namespace dsm {

class SubscriptionMap {
 public:
  /// Every process subscribes to every variable (ShardedOptP then carries
  /// the same causal knowledge as OptP and fans out to the full group).
  [[nodiscard]] static SubscriptionMap full(std::size_t n_procs,
                                            std::size_t n_vars) {
    SubscriptionMap map(n_procs, n_vars);
    for (auto& row : map.subs_) row.assign(n_procs, true);
    map.label_ = "full";
    return map;
  }

  /// `groups` disjoint shards: group g owns the contiguous process block
  /// [g·n/G, (g+1)·n/G) and the variables {v : v mod G == g}.  Contiguous
  /// process blocks line up with ShardHost packing, so a disjoint map keeps
  /// every frame inside one host's ring mesh (zero cross-shard frames).
  [[nodiscard]] static SubscriptionMap disjoint(std::size_t n_procs,
                                                std::size_t n_vars,
                                                std::size_t groups) {
    DSM_REQUIRE(groups >= 1);
    DSM_REQUIRE(groups <= n_procs);
    DSM_REQUIRE(groups <= n_vars);
    SubscriptionMap map(n_procs, n_vars);
    for (VarId v = 0; v < n_vars; ++v) {
      const std::size_t g = v % groups;
      const std::size_t lo = g * n_procs / groups;
      const std::size_t hi = (g + 1) * n_procs / groups;
      for (std::size_t p = lo; p < hi; ++p) map.subs_[v][p] = true;
    }
    map.label_ = "disjoint(" + std::to_string(groups) + ")";
    return map;
  }

  /// Parse a CLI spec: "full", "disjoint:G", or an explicit per-variable
  /// list "v:p,p;v:p,p" covering every variable (e.g. "0:0,1;1:1,2").
  /// Returns nullopt (with a reason in *error) on a malformed or
  /// out-of-range spec; never aborts, so the CLI can pre-validate.
  [[nodiscard]] static std::optional<SubscriptionMap> parse(
      std::string_view spec, std::size_t n_procs, std::size_t n_vars,
      std::string* error = nullptr) {
    const auto fail = [&](const std::string& why) {
      if (error != nullptr) *error = why;
      return std::nullopt;
    };
    if (n_procs < 1 || n_vars < 1) return fail("empty process or var space");
    if (spec == "full") return full(n_procs, n_vars);
    if (spec.rfind("disjoint:", 0) == 0) {
      std::size_t groups = 0;
      for (const char c : spec.substr(9)) {
        if (c < '0' || c > '9') return fail("disjoint:G needs an integer G");
        groups = groups * 10 + static_cast<std::size_t>(c - '0');
      }
      if (groups < 1) return fail("disjoint:G needs G >= 1");
      if (groups > n_procs || groups > n_vars) {
        return fail("disjoint:" + std::to_string(groups) + " exceeds " +
                    std::to_string(n_procs) + " procs / " +
                    std::to_string(n_vars) + " vars");
      }
      return disjoint(n_procs, n_vars, groups);
    }
    // Explicit list: semicolon-separated "var:proc,proc" entries.
    SubscriptionMap map(n_procs, n_vars);
    std::vector<bool> seen(n_vars, false);
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const auto semi = spec.find(';', pos);
      const std::string_view entry =
          spec.substr(pos, semi == std::string_view::npos ? spec.size() - pos
                                                          : semi - pos);
      pos = semi == std::string_view::npos ? spec.size() : semi + 1;
      const auto colon = entry.find(':');
      if (colon == std::string_view::npos) {
        return fail("entry \"" + std::string(entry) + "\" missing ':'");
      }
      std::size_t var = 0;
      if (!parse_uint(entry.substr(0, colon), &var) || var >= n_vars) {
        return fail("bad variable in \"" + std::string(entry) + "\"");
      }
      if (seen[var]) {
        return fail("variable " + std::to_string(var) + " listed twice");
      }
      seen[var] = true;
      std::string_view procs = entry.substr(colon + 1);
      std::size_t count = 0;
      std::size_t ppos = 0;
      while (ppos <= procs.size()) {
        const auto comma = procs.find(',', ppos);
        const std::string_view tok =
            procs.substr(ppos, comma == std::string_view::npos
                                   ? procs.size() - ppos
                                   : comma - ppos);
        ppos = comma == std::string_view::npos ? procs.size() + 1 : comma + 1;
        std::size_t p = 0;
        if (!parse_uint(tok, &p) || p >= n_procs) {
          return fail("bad process in \"" + std::string(entry) + "\"");
        }
        map.subs_[var][p] = true;
        ++count;
      }
      if (count == 0) {
        return fail("variable " + std::to_string(var) + " has no subscribers");
      }
    }
    for (VarId v = 0; v < n_vars; ++v) {
      if (!seen[v]) {
        return fail("variable " + std::to_string(v) +
                    " missing from explicit spec");
      }
    }
    map.label_ = "explicit";
    return map;
  }

  [[nodiscard]] bool is_subscriber(VarId var, ProcessId proc) const {
    DSM_REQUIRE(var < subs_.size());
    DSM_REQUIRE(proc < n_procs_);
    return subs_[var][proc];
  }

  [[nodiscard]] std::vector<ProcessId> subscribers(VarId var) const {
    DSM_REQUIRE(var < subs_.size());
    std::vector<ProcessId> out;
    for (ProcessId p = 0; p < n_procs_; ++p) {
      if (subs_[var][p]) out.push_back(p);
    }
    return out;
  }

  /// Variables this process subscribes to; drives subscription-aware
  /// workload generation and the auditor's liveness obligation.
  [[nodiscard]] std::vector<VarId> vars_of(ProcessId proc) const {
    std::vector<VarId> out;
    for (VarId v = 0; v < subs_.size(); ++v) {
      if (subs_[v][proc]) out.push_back(v);
    }
    return out;
  }

  [[nodiscard]] std::size_t n_procs() const noexcept { return n_procs_; }
  [[nodiscard]] std::size_t n_vars() const noexcept { return subs_.size(); }

  [[nodiscard]] bool is_full() const {
    for (const auto& row : subs_) {
      for (const bool b : row) {
        if (!b) return false;
      }
    }
    return true;
  }

  /// Average subscribers per variable — the fan-out a write pays.
  [[nodiscard]] double mean_size() const {
    std::size_t total = 0;
    for (const auto& row : subs_) {
      for (const bool b : row) total += b;
    }
    return subs_.empty()
               ? 0.0
               : static_cast<double>(total) / static_cast<double>(subs_.size());
  }

  [[nodiscard]] const std::string& describe() const noexcept { return label_; }

 private:
  SubscriptionMap(std::size_t n_procs, std::size_t n_vars)
      : n_procs_(n_procs), subs_(n_vars, std::vector<bool>(n_procs, false)) {
    DSM_REQUIRE(n_procs >= 1);
    DSM_REQUIRE(n_vars >= 1);
  }

  static bool parse_uint(std::string_view tok, std::size_t* out) {
    if (tok.empty()) return false;
    std::size_t v = 0;
    for (const char c : tok) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::size_t>(c - '0');
    }
    *out = v;
    return true;
  }

  std::size_t n_procs_;
  std::vector<std::vector<bool>> subs_;  // [var][proc]
  std::string label_ = "explicit";
};

}  // namespace dsm
