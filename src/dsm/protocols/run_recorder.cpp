#include "dsm/protocols/run_recorder.h"

#include <cinttypes>
#include <cstdio>

#include "dsm/common/format.h"

namespace dsm {

const char* to_string(EvKind k) noexcept {
  switch (k) {
    case EvKind::kSend: return "send";
    case EvKind::kReceipt: return "receipt";
    case EvKind::kApply: return "apply";
    case EvKind::kReturn: return "return";
    case EvKind::kSkip: return "skip";
  }
  return "?";
}

std::string event_to_string(const RunEvent& e) {
  char buf[128];
  switch (e.kind) {
    case EvKind::kReturn:
      std::snprintf(buf, sizeof buf, "return_%u(x%u,%" PRId64 ")", e.at + 1,
                    e.var + 1, e.value);
      return buf;
    case EvKind::kSkip:
      std::snprintf(buf, sizeof buf, "skip_%u(%s by %s)", e.at + 1,
                    to_string(e.write).c_str(), to_string(e.other).c_str());
      return buf;
    default:
      std::snprintf(buf, sizeof buf, "%s_%u(%s)", to_string(e.kind), e.at + 1,
                    to_string(e.write).c_str());
      return buf;
  }
}

RunRecorder::RunRecorder(std::size_t n_procs, std::size_t n_vars, ClockFn clock)
    : history_(n_procs, n_vars), clock_(std::move(clock)) {}

void RunRecorder::push(RunEvent e) {
  e.order = next_order_++;
  e.time = clock_ ? clock_() : 0;
  events_.push_back(e);
  if (sink_ != nullptr) sink_->accept_event(events_.back());
}

WriteId RunRecorder::record_write(ProcessId p, VarId x, Value v) {
  const std::scoped_lock lock(mu_);
  const WriteId id = history_.add_write(p, x, v);
  if (sink_ != nullptr) sink_->accept_write(p, x, v, id);
  return id;
}

void RunRecorder::record_read(ProcessId p, VarId x, const ReadResult& r) {
  const std::scoped_lock lock(mu_);
  history_.add_read(p, x, r.value, r.writer);
  if (sink_ != nullptr) sink_->accept_read(p, x, r.value, r.writer);
}

WriteId RunRecorder::record_mutation(ProcessId p, VarId x, std::uint8_t spec,
                                     std::uint8_t opcode, Value arg,
                                     Value arg2) {
  const std::scoped_lock lock(mu_);
  const WriteId id =
      history_.add_mutation(p, x, static_cast<SpecId>(spec),
                            static_cast<OpCode>(opcode), arg, arg2);
  if (sink_ != nullptr) sink_->accept_write(p, x, arg, id);
  return id;
}

void RunRecorder::record_accessor(ProcessId p, VarId x, std::uint8_t spec,
                                  std::uint8_t opcode, Value arg,
                                  Value returned, WriteId from,
                                  std::vector<std::uint64_t> visible) {
  const std::scoped_lock lock(mu_);
  history_.add_accessor(p, x, static_cast<SpecId>(spec),
                        static_cast<OpCode>(opcode), arg, returned, from,
                        std::move(visible));
  if (sink_ != nullptr) sink_->accept_read(p, x, returned, from);
}

void RunRecorder::set_sink(EventSink* sink) {
  const std::scoped_lock lock(mu_);
  sink_ = sink;
}

void RunRecorder::restore_write(ProcessId p, VarId x, Value v) {
  const std::scoped_lock lock(mu_);
  (void)history_.add_write(p, x, v);
}

void RunRecorder::restore_read(ProcessId p, VarId x, Value v, WriteId from) {
  const std::scoped_lock lock(mu_);
  history_.add_read(p, x, v, from);
}

void RunRecorder::restore_event(const RunEvent& e) {
  const std::scoped_lock lock(mu_);
  events_.push_back(e);
  if (e.order >= next_order_) next_order_ = e.order + 1;
}

void RunRecorder::on_send(ProcessId at, const WriteUpdate& m) {
  const std::scoped_lock lock(mu_);
  RunEvent e;
  e.at = at;
  e.kind = EvKind::kSend;
  e.write = WriteId{m.sender, m.write_seq};
  e.var = m.var;
  e.value = m.value;
  e.clock = m.clock;
  push(e);
}

void RunRecorder::on_receipt(ProcessId at, const WriteUpdate& m) {
  const std::scoped_lock lock(mu_);
  RunEvent e;
  e.at = at;
  e.kind = EvKind::kReceipt;
  e.write = WriteId{m.sender, m.write_seq};
  e.var = m.var;
  e.value = m.value;
  e.clock = m.clock;
  push(e);
}

void RunRecorder::on_apply(ProcessId at, WriteId w, bool delayed) {
  const std::scoped_lock lock(mu_);
  RunEvent e;
  e.at = at;
  e.kind = EvKind::kApply;
  e.write = w;
  e.delayed = delayed;
  push(e);
}

void RunRecorder::on_return(ProcessId at, VarId x, Value v, WriteId from) {
  const std::scoped_lock lock(mu_);
  RunEvent e;
  e.at = at;
  e.kind = EvKind::kReturn;
  e.var = x;
  e.value = v;
  e.write = from;
  push(e);
}

void RunRecorder::on_skip(ProcessId at, WriteId w, WriteId by) {
  const std::scoped_lock lock(mu_);
  RunEvent e;
  e.at = at;
  e.kind = EvKind::kSkip;
  e.write = w;
  e.other = by;
  push(e);
}

std::vector<RunEvent> RunRecorder::events_at(ProcessId p) const {
  const std::scoped_lock lock(mu_);
  std::vector<RunEvent> out;
  for (const auto& e : events_) {
    if (e.at == p) out.push_back(e);
  }
  return out;
}

std::optional<RunEvent> RunRecorder::find(EvKind kind, ProcessId at,
                                          WriteId w) const {
  const std::scoped_lock lock(mu_);
  for (const auto& e : events_) {
    if (e.kind == kind && e.at == at && e.write == w) return e;
  }
  return std::nullopt;
}

std::string sequence_str(std::span<const RunEvent> events, ProcessId p) {
  std::vector<std::string> parts;
  for (const auto& e : events) {
    if (e.at == p) parts.push_back(event_to_string(e));
  }
  return join(parts, " <_" + std::to_string(p + 1) + " ");
}

std::string RunRecorder::sequence_str(ProcessId p) const {
  const std::scoped_lock lock(mu_);
  return dsm::sequence_str(events_, p);
}

}  // namespace dsm
