#include "dsm/protocols/registry.h"

#include "dsm/protocols/anbkh.h"
#include "dsm/protocols/buffering.h"
#include "dsm/protocols/optp.h"
#include "dsm/protocols/partial.h"
#include "dsm/protocols/sharded.h"
#include "dsm/protocols/token.h"

namespace dsm {

const char* to_string(ProtocolKind k) noexcept {
  switch (k) {
    case ProtocolKind::kOptP: return "optp";
    case ProtocolKind::kOptPWs: return "optp-ws";
    case ProtocolKind::kAnbkh: return "anbkh";
    case ProtocolKind::kAnbkhWs: return "anbkh-ws";
    case ProtocolKind::kTokenWs: return "token-ws";
    case ProtocolKind::kOptPPartial: return "optp-partial";
    case ProtocolKind::kOptPConv: return "optp-conv";
    case ProtocolKind::kOptPSharded: return "optp-sharded";
  }
  return "?";
}

std::optional<ProtocolKind> parse_protocol(std::string_view name) {
  for (const auto kind : all_protocol_kinds()) {
    if (name == to_string(kind)) return kind;
  }
  if (name == to_string(ProtocolKind::kOptPPartial)) {
    return ProtocolKind::kOptPPartial;
  }
  if (name == to_string(ProtocolKind::kOptPConv)) {
    return ProtocolKind::kOptPConv;
  }
  if (name == to_string(ProtocolKind::kOptPSharded)) {
    return ProtocolKind::kOptPSharded;
  }
  return std::nullopt;
}

const std::vector<ProtocolKind>& all_protocol_kinds() {
  static const std::vector<ProtocolKind> kinds = {
      ProtocolKind::kOptP, ProtocolKind::kAnbkh, ProtocolKind::kOptPWs,
      ProtocolKind::kAnbkhWs, ProtocolKind::kTokenWs};
  return kinds;
}

const std::vector<ProtocolKind>& class_p_protocol_kinds() {
  static const std::vector<ProtocolKind> kinds = {ProtocolKind::kOptP,
                                                  ProtocolKind::kAnbkh};
  return kinds;
}

namespace {

std::unique_ptr<CausalProtocol> apply_drain_mode(
    std::unique_ptr<CausalProtocol> proto, const ProtocolConfig& config) {
  if (config.reference_drain) {
    if (auto* buffering = dynamic_cast<BufferingProtocol*>(proto.get())) {
      buffering->set_reference_drain(true);
    }
  }
  return proto;
}

std::unique_ptr<CausalProtocol> build_protocol(ProtocolKind kind,
                                               ProcessId self,
                                               std::size_t n_procs,
                                               std::size_t n_vars,
                                               Endpoint& endpoint,
                                               ProtocolObserver& observer,
                                               const ProtocolConfig& config) {
  switch (kind) {
    case ProtocolKind::kOptP:
      return std::make_unique<OptP>(self, n_procs, n_vars, endpoint, observer,
                                    /*writing_semantics=*/false,
                                    config.write_blob_size);
    case ProtocolKind::kOptPWs:
      return std::make_unique<OptP>(self, n_procs, n_vars, endpoint, observer,
                                    /*writing_semantics=*/true,
                                    config.write_blob_size);
    case ProtocolKind::kAnbkh:
      return std::make_unique<Anbkh>(self, n_procs, n_vars, endpoint, observer,
                                     /*writing_semantics=*/false);
    case ProtocolKind::kAnbkhWs:
      return std::make_unique<Anbkh>(self, n_procs, n_vars, endpoint, observer,
                                     /*writing_semantics=*/true);
    case ProtocolKind::kTokenWs:
      return std::make_unique<TokenWs>(self, n_procs, n_vars, endpoint,
                                       observer, config.token_max_rounds);
    case ProtocolKind::kOptPConv:
      return std::make_unique<OptP>(self, n_procs, n_vars, endpoint, observer,
                                    /*writing_semantics=*/false,
                                    config.write_blob_size,
                                    /*convergent=*/true);
    case ProtocolKind::kOptPPartial: {
      auto map = config.replication;
      if (map == nullptr) {
        map = std::make_shared<const ReplicationMap>(
            ReplicationMap::full(n_procs, n_vars));
      }
      return std::make_unique<PartialOptP>(self, n_procs, n_vars, endpoint,
                                           observer, std::move(map),
                                           /*writing_semantics=*/false,
                                           config.write_blob_size);
    }
    case ProtocolKind::kOptPSharded: {
      auto map = config.subscription;
      if (map == nullptr) {
        map = std::make_shared<const SubscriptionMap>(
            SubscriptionMap::full(n_procs, n_vars));
      }
      return std::make_unique<ShardedOptP>(self, n_procs, n_vars, endpoint,
                                           observer, std::move(map),
                                           config.write_blob_size);
    }
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<CausalProtocol> make_protocol(ProtocolKind kind, ProcessId self,
                                              std::size_t n_procs,
                                              std::size_t n_vars,
                                              Endpoint& endpoint,
                                              ProtocolObserver& observer,
                                              const ProtocolConfig& config) {
  return apply_drain_mode(build_protocol(kind, self, n_procs, n_vars, endpoint,
                                         observer, config),
                          config);
}

}  // namespace dsm
