// optcm — run recording: the bridge from protocol executions to the paper's
// analysis machinery.
//
// A RunRecorder is a ProtocolObserver that logs every send / receipt / apply /
// return / skip event with a global sequence number and a caller-supplied
// timestamp, and simultaneously builds the GlobalHistory of the run (writes
// in program order, reads with their ↦ro writer).  The optimality auditor
// consumes exactly this pair (events, history) to evaluate Definitions 3–5,
// and the figure renderers pretty-print the event log in the paper's
// "receipt_3(w_2(x_2)b) <_3 …" style.
//
// Thread-safe: the threaded runtime appends from n node threads; a mutex
// serializes appends (the simulator pays the uncontended-lock cost, which is
// noise at simulation scale).

#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dsm/history/history.h"
#include "dsm/protocols/protocol.h"

namespace dsm {

enum class EvKind : std::uint8_t { kSend, kReceipt, kApply, kReturn, kSkip };

[[nodiscard]] const char* to_string(EvKind k) noexcept;

struct RunEvent {
  std::uint64_t order = 0;  ///< global sequence number (total order of observation)
  std::uint64_t time = 0;   ///< caller clock (sim µs or steady-clock ns)
  ProcessId at = 0;         ///< process where the event occurred
  EvKind kind = EvKind::kSend;
  WriteId write;            ///< subject write (send/receipt/apply/skip)
  WriteId other;            ///< skip: the superseding write
  VarId var = 0;            ///< return events
  Value value = kBottom;    ///< return events
  bool delayed = false;     ///< apply events: buffered at receipt (Def. 3)
  /// send/receipt events: the piggybacked vector (Write_co for OptP, the FM
  /// clock for ANBKH).  The auditor derives protocol enabling sets from it.
  VectorClock clock;
};

/// "apply_3(w1^2)" — paper-style event label.
[[nodiscard]] std::string event_to_string(const RunEvent& e);

/// Paper-style one-line sequence of the events at process p, in the order
/// given: "receipt_3(w2^1) <_3 apply_3(w2^1) <_3 …".  Timestamps and global
/// order numbers do not appear, so two runs of the same workload — simulated
/// or over real sockets, live or imported from a trace — compare
/// byte-for-byte exactly when their per-process observer behaviour matches.
[[nodiscard]] std::string sequence_str(std::span<const RunEvent> events,
                                       ProcessId p);

/// Receiver side of the recorder's durability seam.  A RunRecorder tees every
/// history record and observer event it accepts into an optional EventSink —
/// the WAL-spilling sink in src/dsm/storage implements this to persist the
/// run log, while the recorder itself stays the in-memory source of truth.
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// History record: process p wrote v to x; `id` is the assigned WriteId.
  virtual void accept_write(ProcessId p, VarId x, Value v, WriteId id) = 0;
  /// History record: process p read v from x, served by `from`.
  virtual void accept_read(ProcessId p, VarId x, Value v, WriteId from) = 0;
  /// Observer event, with `order`/`time` already assigned.
  virtual void accept_event(const RunEvent& e) = 0;
};

class RunRecorder final : public ProtocolObserver {
 public:
  using ClockFn = std::function<std::uint64_t()>;

  /// `clock` supplies event timestamps; defaults to a constant 0 (pure
  /// logical order).
  RunRecorder(std::size_t n_procs, std::size_t n_vars, ClockFn clock = {});

  // -- history building (called by the workload driver) --------------------
  /// Record that process p is about to issue its next write of v to x.
  WriteId record_write(ProcessId p, VarId x, Value v);
  /// Record a completed read.
  void record_read(ProcessId p, VarId x, const ReadResult& r);
  /// Record that process p is about to issue a typed mutation on x (shares
  /// write numbering with record_write; raw spec/opcode bytes as on the
  /// wire).
  WriteId record_mutation(ProcessId p, VarId x, std::uint8_t spec,
                          std::uint8_t opcode, Value arg, Value arg2);
  /// Record a completed typed accessor: it returned `returned` for query
  /// operand `arg`; `from` tags the last locally applied mutation and
  /// `visible` snapshots the ObjectStore's per-sender applied counts.
  void record_accessor(ProcessId p, VarId x, std::uint8_t spec,
                       std::uint8_t opcode, Value arg, Value returned,
                       WriteId from, std::vector<std::uint64_t> visible);

  // -- durability seam -------------------------------------------------------
  /// Tee every subsequent record/event into `sink` (nullptr detaches).  The
  /// sink is invoked under the recorder's lock, so implementations must not
  /// call back into the recorder.
  void set_sink(EventSink* sink);

  /// Replay entry points: re-ingest a previously recorded run verbatim.
  /// History records regenerate the same WriteIds (add_write assigns seqs
  /// deterministically); events keep their recorded order/time, and
  /// `next_order_` advances past them so live recording resumes after the
  /// replayed prefix.  Nothing is forwarded to the sink — the spilled log
  /// already contains these.
  void restore_write(ProcessId p, VarId x, Value v);
  void restore_read(ProcessId p, VarId x, Value v, WriteId from);
  void restore_event(const RunEvent& e);

  // -- ProtocolObserver ----------------------------------------------------
  void on_send(ProcessId at, const WriteUpdate& m) override;
  void on_receipt(ProcessId at, const WriteUpdate& m) override;
  void on_apply(ProcessId at, WriteId w, bool delayed) override;
  void on_return(ProcessId at, VarId x, Value v, WriteId from) override;
  void on_skip(ProcessId at, WriteId w, WriteId by) override;

  // -- results ---------------------------------------------------------------
  [[nodiscard]] const GlobalHistory& history() const noexcept { return history_; }
  [[nodiscard]] const std::vector<RunEvent>& events() const noexcept {
    return events_;
  }

  /// Events that occurred at process p, in their global observation order.
  [[nodiscard]] std::vector<RunEvent> events_at(ProcessId p) const;

  /// The first event of the given kind for (write, process), if any.
  [[nodiscard]] std::optional<RunEvent> find(EvKind kind, ProcessId at,
                                             WriteId w) const;

  /// Paper-style one-line sequence for process p:
  /// "receipt_3(w2^1) <_3 apply_3(w2^1) <_3 …".
  [[nodiscard]] std::string sequence_str(ProcessId p) const;

 private:
  void push(RunEvent e);

  mutable std::mutex mu_;
  GlobalHistory history_;
  std::vector<RunEvent> events_;
  ClockFn clock_;
  std::uint64_t next_order_ = 0;
  EventSink* sink_ = nullptr;
};

}  // namespace dsm
