#include "dsm/codec/codec.h"

namespace dsm {

namespace {
// Cap on decoded container lengths; a malformed length field must not drive
// a multi-gigabyte allocation.
constexpr std::uint64_t kMaxContainer = 1ULL << 24;
}  // namespace

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u64(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) { u64(v); }

void ByteWriter::i64(std::int64_t v) { u64(zigzag_encode(v)); }

void ByteWriter::str(std::string_view s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::u64_vec(std::span<const std::uint64_t> v) {
  u64(v.size());
  for (const auto x : v) u64(x);
}

void ByteWriter::bytes(std::span<const std::uint8_t> raw) {
  buf_.insert(buf_.end(), raw.begin(), raw.end());
}

std::span<const std::uint8_t> ByteReader::rest() noexcept {
  if (!ok_) return {};
  const auto tail = data_.subspan(pos_);
  pos_ = data_.size();
  return tail;
}

std::optional<std::span<const std::uint8_t>> ByteReader::take(
    std::size_t n) noexcept {
  if (!ok_ || n > remaining()) {
    fail();
    return std::nullopt;
  }
  const auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::optional<std::uint8_t> ByteReader::u8() noexcept {
  if (!ok_ || pos_ >= data_.size()) {
    fail();
    return std::nullopt;
  }
  return data_[pos_++];
}

std::optional<std::uint64_t> ByteReader::u64() noexcept {
  if (!ok_) return std::nullopt;
  std::uint64_t result = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos_ >= data_.size()) {
      fail();
      return std::nullopt;
    }
    const std::uint8_t byte = data_[pos_++];
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical over-long encodings in the final group.
      if (shift == 63 && (byte & 0x7E) != 0) {
        fail();
        return std::nullopt;
      }
      return result;
    }
  }
  fail();  // > 10 continuation bytes
  return std::nullopt;
}

std::optional<std::uint32_t> ByteReader::u32() noexcept {
  const auto v = u64();
  if (!v || *v > 0xFFFFFFFFULL) {
    fail();
    return std::nullopt;
  }
  return static_cast<std::uint32_t>(*v);
}

std::optional<std::int64_t> ByteReader::i64() noexcept {
  const auto v = u64();
  if (!v) return std::nullopt;
  return zigzag_decode(*v);
}

std::optional<std::string> ByteReader::str() {
  const auto len = u64();
  if (!len || *len > kMaxContainer || *len > remaining()) {
    fail();
    return std::nullopt;
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(*len));
  pos_ += static_cast<std::size_t>(*len);
  return out;
}

std::optional<std::vector<std::uint64_t>> ByteReader::u64_vec() {
  const auto len = u64();
  // Every element occupies at least one byte, so a length exceeding the
  // remaining input is malformed on its face — reject it BEFORE reserving,
  // or a 5-byte adversarial buffer could drive a 128 MB allocation.
  if (!len || *len > kMaxContainer || *len > remaining()) {
    fail();
    return std::nullopt;
  }
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(*len));
  for (std::uint64_t i = 0; i < *len; ++i) {
    const auto v = u64();
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

}  // namespace dsm
