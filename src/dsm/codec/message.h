// optcm — on-the-wire protocol messages.
//
// Five message shapes cover every protocol in the library:
//   * WriteUpdate — one write operation w_i(x_h)v plus its piggybacked vector
//     (Write_co for OptP, a Fidge–Mattern clock for ANBKH).  Paper Fig. 4
//     line 2: send[m(x_h, v, Write_co)] to Π − p_i.
//   * TokenGrant — circulating-token handoff for the sender-side
//     writing-semantics protocol (Jiménez et al. [7]).
//   * BatchUpdate — the token holder's last-write-per-variable batch.
//   * CatchUpRequest / CatchUpReply — anti-entropy state transfer for crash
//     recovery (beyond the paper's crash-free model; see docs/FAULTS.md): a
//     restarted process broadcasts the per-sender write counts it has applied
//     and peers reply with every logged WriteUpdate above those watermarks.
//
// Every message encodes to bytes (see codec.h) and decodes defensively; the
// tagged `decode_message` entry point returns std::nullopt on any malformed
// input.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "dsm/common/types.h"
#include "dsm/codec/codec.h"
#include "dsm/vc/vector_clock.h"

namespace dsm {

enum class MsgType : std::uint8_t {
  kWriteUpdate = 1,
  kTokenGrant = 2,
  kBatchUpdate = 3,
  kCatchUpRequest = 4,
  kCatchUpReply = 5,
};

/// One entry of ShardedOptP's sparse causal-knowledge matrix: "the latest
/// write by `col` relevant to `row` in this write's causal past is `col`'s
/// `seq`-th row-relevant write".  Entries are sorted by (row, col) and only
/// nonzero seqs are shipped, so the encoded size is O(active subscriber
/// pairs), not O(n²).
struct SubDep {
  ProcessId row = 0;  ///< the subscriber whose knowledge this entry mirrors
  ProcessId col = 0;  ///< the writer the knowledge is about
  SeqNo seq = 0;      ///< count of col's row-relevant writes known

  friend bool operator==(const SubDep&, const SubDep&) = default;
};

/// A single write operation in flight.
struct WriteUpdate {
  ProcessId sender = 0;   ///< issuing process p_u
  VarId var = 0;          ///< written location x_h
  Value value = 0;        ///< written value v
  SeqNo write_seq = 0;    ///< k: this is p_u's k-th write (1-based)
  VectorClock clock;      ///< piggybacked vector (semantics protocol-specific)
  /// Writing semantics (variants of [2]/[14]): how many immediately preceding
  /// writes by the same sender — all on the same variable, with identical
  /// foreign clock components — this write supersedes.  A receiver missing
  /// only sender-writes in (write_seq - run - 1, write_seq) may apply this
  /// message anyway, logically applying the superseded writes just before it.
  /// Always 0 for protocols without writing semantics.
  std::uint64_t run = 0;
  /// Partial replication (after [14]): true when this copy of the update
  /// carries causal metadata only — the receiver is not a replica of `var`
  /// and must advance its Apply counter without installing the value.
  bool meta_only = false;
  /// Application payload attached to the value (models large objects whose
  /// bodies partial replication avoids shipping to non-replicas).  Empty for
  /// meta-only copies.
  std::vector<std::uint8_t> blob;
  /// Subscription-routed sharding (ShardedOptP): the sparse causal-knowledge
  /// matrix carried instead of the complete-group Apply counters.  Sorted by
  /// (row, col), nonzero seqs only; empty for every other protocol.
  std::vector<SubDep> sub_deps;
  /// Typed-object extension (dsm/objects): the mutation travels as the
  /// opaque triple (spec, opcode, arg) — `value` carries the primary
  /// operand, `arg2` the secondary (CAS desired value).  Raw bytes here, not
  /// enums, so the codec stays link-independent of the objects library.
  /// All three are 0 for a plain register write, the frame's typed flag bit
  /// stays clear, and the encoding degenerates byte-identically to the
  /// pre-typed format.
  std::uint8_t spec = 0;
  std::uint8_t opcode = 0;
  Value arg2 = 0;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<WriteUpdate> decode(ByteReader& r);

  friend bool operator==(const WriteUpdate&, const WriteUpdate&) = default;
};

/// Token handoff for the sender-side writing-semantics protocol.
struct TokenGrant {
  std::uint64_t round = 0;  ///< monotone round counter
  ProcessId holder = 0;     ///< process receiving the token

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<TokenGrant> decode(ByteReader& r);

  friend bool operator==(const TokenGrant&, const TokenGrant&) = default;
};

/// One coalesced entry of a token-round batch.
struct BatchEntry {
  VarId var = 0;
  Value value = 0;
  SeqNo write_seq = 0;      ///< seq of the surviving (last) write on var
  std::uint64_t skipped = 0;///< how many earlier writes on var were coalesced

  friend bool operator==(const BatchEntry&, const BatchEntry&) = default;
};

/// The token holder's updates for one round (last write per variable).
struct BatchUpdate {
  ProcessId sender = 0;
  std::uint64_t round = 0;
  std::vector<BatchEntry> entries;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<BatchUpdate> decode(ByteReader& r);

  friend bool operator==(const BatchUpdate&, const BatchUpdate&) = default;
};

/// Anti-entropy request from a restarted process: `have[u]` is the highest
/// write_seq of p_u the requester has applied.  Receivers answer with a
/// CatchUpReply of everything newer — and, if the request shows the
/// requester is AHEAD of them, issue their own request back (symmetric
/// re-request; handles overlapping crashes).
struct CatchUpRequest {
  ProcessId requester = 0;
  VectorClock have;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<CatchUpRequest> decode(ByteReader& r);

  friend bool operator==(const CatchUpRequest&, const CatchUpRequest&) = default;
};

/// The replier's logged writes above the requester's watermarks, plus the
/// replier's own applied vector (lets the requester detect peers that are
/// behind it).
struct CatchUpReply {
  ProcessId replier = 0;
  VectorClock have;
  std::vector<WriteUpdate> writes;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<CatchUpReply> decode(ByteReader& r);

  friend bool operator==(const CatchUpReply&, const CatchUpReply&) = default;
};

using Message = std::variant<WriteUpdate, TokenGrant, BatchUpdate,
                             CatchUpRequest, CatchUpReply>;

/// Frame a message with its type tag.
[[nodiscard]] std::vector<std::uint8_t> encode_message(const Message& m);

/// Frame a message with its type tag into an existing writer (scratch-buffer
/// reuse on hot paths; see ByteWriter's adopting constructor).
void encode_message(const Message& m, ByteWriter& w);

/// Frame a bare WriteUpdate (tag + body) without constructing the Message
/// variant — the broadcast hot path would otherwise copy the payload blob
/// into a temporary variant just to encode it.
void encode_message(const WriteUpdate& m, ByteWriter& w);

/// Decode a framed message; std::nullopt on malformed/truncated/trailing-garbage
/// input.
[[nodiscard]] std::optional<Message> decode_message(std::span<const std::uint8_t> bytes);

}  // namespace dsm
