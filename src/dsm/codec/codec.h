// optcm — byte-level encoding primitives.
//
// All inter-process messages travel as byte buffers, in the simulator as well
// as over the threaded transport, so the codec is exercised on every message
// hop.  Integers use LEB128 varints (clock components are mostly small);
// values use zig-zag varints.  Decoding is defensive: a truncated or
// malformed buffer yields an error instead of UB, and the decoder never reads
// past `size()`.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dsm {

/// Append-only byte buffer with varint primitives.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Adopt `buf` as the backing store: contents are discarded, capacity is
  /// kept.  Hot encode paths hand their scratch vector in, encode, and
  /// reclaim it with `std::move(w).take()` — no allocation once the scratch
  /// has grown to the working-set size.
  explicit ByteWriter(std::vector<std::uint8_t> buf) noexcept
      : buf_(std::move(buf)) {
    buf_.clear();
  }

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);   ///< LEB128 varint
  void u64(std::uint64_t v);   ///< LEB128 varint
  void i64(std::int64_t v);    ///< zig-zag varint
  void str(std::string_view s);
  void u64_vec(std::span<const std::uint64_t> v);
  void bytes(std::span<const std::uint8_t> raw);

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential reader over an encoded buffer.  Every accessor returns
/// std::nullopt on malformed/truncated input; `ok()` stays false afterwards.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> u8() noexcept;
  [[nodiscard]] std::optional<std::uint32_t> u32() noexcept;
  [[nodiscard]] std::optional<std::uint64_t> u64() noexcept;
  [[nodiscard]] std::optional<std::int64_t> i64() noexcept;
  [[nodiscard]] std::optional<std::string> str();
  [[nodiscard]] std::optional<std::vector<std::uint64_t>> u64_vec();

  /// The not-yet-consumed tail of the buffer (frame payloads).  Consumes it:
  /// the reader is exhausted afterwards.
  [[nodiscard]] std::span<const std::uint8_t> rest() noexcept;

  /// Consume exactly `n` raw bytes (length-prefixed sub-buffers, e.g.
  /// checkpoint sections).  std::nullopt if fewer than `n` remain.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> take(
      std::size_t n) noexcept;

  /// True iff no decode error occurred so far.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True iff the whole buffer was consumed (call at the end of decode).
  [[nodiscard]] bool exhausted() const noexcept { return ok_ && pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  void fail() noexcept { ok_ = false; }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Zig-zag transforms (exposed for tests).
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace dsm
