#include "dsm/codec/message.h"

#include "dsm/objects/opcodes.h"  // header-only; no link dependency

namespace dsm {

namespace {
// Flag bits of the WriteUpdate flags byte.  Bit 0 has always been the
// meta_only marker (the byte was a plain bool before typed objects); bit 1
// announces the typed trailer.  Unknown bits reject — they are reserved.
constexpr std::uint8_t kFlagMetaOnly = 1;
constexpr std::uint8_t kFlagTyped = 2;
}  // namespace

void WriteUpdate::encode(ByteWriter& w) const {
  const bool typed = spec != 0 || opcode != 0 || arg2 != 0;
  w.u32(sender);
  w.u32(var);
  w.i64(value);
  w.u64(write_seq);
  w.u64(run);
  w.u8(static_cast<std::uint8_t>((meta_only ? kFlagMetaOnly : 0) |
                                 (typed ? kFlagTyped : 0)));
  w.u64(blob.size());
  w.bytes(blob);
  w.u64_vec(clock.components());
  w.u64(sub_deps.size());
  for (const auto& d : sub_deps) {
    w.u32(d.row);
    w.u32(d.col);
    w.u64(d.seq);
  }
  if (typed) {
    w.u8(spec);
    w.u8(opcode);
    w.i64(arg2);
  }
}

std::optional<WriteUpdate> WriteUpdate::decode(ByteReader& r) {
  WriteUpdate m;
  const auto sender = r.u32();
  const auto var = r.u32();
  const auto value = r.i64();
  const auto seq = r.u64();
  const auto run = r.u64();
  const auto flags = r.u8();
  const auto blob_len = r.u64();
  if (!sender || !var || !value || !seq || !run || !flags || !blob_len ||
      (*flags & ~(kFlagMetaOnly | kFlagTyped)) != 0 ||
      *blob_len > (1ULL << 24) || *blob_len > r.remaining()) {
    return std::nullopt;
  }
  m.blob.reserve(static_cast<std::size_t>(*blob_len));
  for (std::uint64_t i = 0; i < *blob_len; ++i) {
    const auto byte = r.u8();
    if (!byte) return std::nullopt;
    m.blob.push_back(*byte);
  }
  auto clock = r.u64_vec();
  if (!clock) return std::nullopt;
  const auto dep_count = r.u64();
  // Each entry is at least 3 encoded bytes; cap by the remaining input so a
  // forged count cannot drive the reserve below.
  if (!dep_count || *dep_count > (1ULL << 24) || *dep_count > r.remaining()) {
    return std::nullopt;
  }
  m.sub_deps.reserve(static_cast<std::size_t>(*dep_count));
  for (std::uint64_t i = 0; i < *dep_count; ++i) {
    SubDep d;
    const auto row = r.u32();
    const auto col = r.u32();
    const auto dep_seq = r.u64();
    if (!row || !col || !dep_seq) return std::nullopt;
    d.row = *row;
    d.col = *col;
    d.seq = *dep_seq;
    m.sub_deps.push_back(d);
  }
  if ((*flags & kFlagTyped) != 0) {
    const auto spec = r.u8();
    const auto opcode = r.u8();
    const auto arg2 = r.i64();
    // The trailer must name a known spec and a mutating opcode (only
    // mutations travel as WriteUpdates), and must not be the degenerate
    // register triple — that must ship flag-less for byte-identity.
    if (!spec || !opcode || !arg2 || !valid_spec_id(*spec) ||
        !valid_opcode(*opcode) ||
        !is_mutation(static_cast<OpCode>(*opcode)) ||
        (*spec == 0 && *opcode == 0 && *arg2 == 0)) {
      return std::nullopt;
    }
    m.spec = *spec;
    m.opcode = *opcode;
    m.arg2 = *arg2;
  }
  m.sender = *sender;
  m.var = *var;
  m.value = *value;
  m.write_seq = *seq;
  m.run = *run;
  m.meta_only = (*flags & kFlagMetaOnly) != 0;
  m.clock = VectorClock{std::move(*clock)};
  return m;
}

void TokenGrant::encode(ByteWriter& w) const {
  w.u64(round);
  w.u32(holder);
}

std::optional<TokenGrant> TokenGrant::decode(ByteReader& r) {
  TokenGrant m;
  const auto round = r.u64();
  const auto holder = r.u32();
  if (!round || !holder) return std::nullopt;
  m.round = *round;
  m.holder = *holder;
  return m;
}

void BatchUpdate::encode(ByteWriter& w) const {
  w.u32(sender);
  w.u64(round);
  w.u64(entries.size());
  for (const auto& e : entries) {
    w.u32(e.var);
    w.i64(e.value);
    w.u64(e.write_seq);
    w.u64(e.skipped);
  }
}

std::optional<BatchUpdate> BatchUpdate::decode(ByteReader& r) {
  BatchUpdate m;
  const auto sender = r.u32();
  const auto round = r.u64();
  const auto count = r.u64();
  // Each entry is at least 4 encoded bytes; a count beyond the remaining
  // input is malformed and must not drive the reserve below.
  if (!sender || !round || !count || *count > (1ULL << 24) ||
      *count > r.remaining()) {
    return std::nullopt;
  }
  m.sender = *sender;
  m.round = *round;
  m.entries.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    BatchEntry e;
    const auto var = r.u32();
    const auto value = r.i64();
    const auto seq = r.u64();
    const auto skipped = r.u64();
    if (!var || !value || !seq || !skipped) return std::nullopt;
    e.var = *var;
    e.value = *value;
    e.write_seq = *seq;
    e.skipped = *skipped;
    m.entries.push_back(e);
  }
  return m;
}

void CatchUpRequest::encode(ByteWriter& w) const {
  w.u32(requester);
  w.u64_vec(have.components());
}

std::optional<CatchUpRequest> CatchUpRequest::decode(ByteReader& r) {
  CatchUpRequest m;
  const auto requester = r.u32();
  auto have = r.u64_vec();
  if (!requester || !have) return std::nullopt;
  m.requester = *requester;
  m.have = VectorClock{std::move(*have)};
  return m;
}

void CatchUpReply::encode(ByteWriter& w) const {
  w.u32(replier);
  w.u64_vec(have.components());
  w.u64(writes.size());
  for (const auto& wu : writes) wu.encode(w);
}

std::optional<CatchUpReply> CatchUpReply::decode(ByteReader& r) {
  CatchUpReply m;
  const auto replier = r.u32();
  auto have = r.u64_vec();
  const auto count = r.u64();
  // A WriteUpdate encodes to well over one byte; cap by the remaining input
  // so a forged count cannot drive the reserve below.
  if (!replier || !have || !count || *count > (1ULL << 24) ||
      *count > r.remaining()) {
    return std::nullopt;
  }
  m.replier = *replier;
  m.have = VectorClock{std::move(*have)};
  m.writes.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto wu = WriteUpdate::decode(r);
    if (!wu) return std::nullopt;
    m.writes.push_back(std::move(*wu));
  }
  return m;
}

void encode_message(const Message& m, ByteWriter& w) {
  std::visit(
      [&w](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, WriteUpdate>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kWriteUpdate));
        } else if constexpr (std::is_same_v<T, TokenGrant>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kTokenGrant));
        } else if constexpr (std::is_same_v<T, BatchUpdate>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kBatchUpdate));
        } else if constexpr (std::is_same_v<T, CatchUpRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kCatchUpRequest));
        } else {
          w.u8(static_cast<std::uint8_t>(MsgType::kCatchUpReply));
        }
        msg.encode(w);
      },
      m);
}

void encode_message(const WriteUpdate& m, ByteWriter& w) {
  w.u8(static_cast<std::uint8_t>(MsgType::kWriteUpdate));
  m.encode(w);
}

std::vector<std::uint8_t> encode_message(const Message& m) {
  ByteWriter w;
  encode_message(m, w);
  return std::move(w).take();
}

std::optional<Message> decode_message(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  const auto tag = r.u8();
  if (!tag) return std::nullopt;
  std::optional<Message> out;
  switch (static_cast<MsgType>(*tag)) {
    case MsgType::kWriteUpdate: {
      auto m = WriteUpdate::decode(r);
      if (m) out = std::move(*m);
      break;
    }
    case MsgType::kTokenGrant: {
      auto m = TokenGrant::decode(r);
      if (m) out = std::move(*m);
      break;
    }
    case MsgType::kBatchUpdate: {
      auto m = BatchUpdate::decode(r);
      if (m) out = std::move(*m);
      break;
    }
    case MsgType::kCatchUpRequest: {
      auto m = CatchUpRequest::decode(r);
      if (m) out = std::move(*m);
      break;
    }
    case MsgType::kCatchUpReply: {
      auto m = CatchUpReply::decode(r);
      if (m) out = std::move(*m);
      break;
    }
    default:
      return std::nullopt;
  }
  if (!out || !r.exhausted()) return std::nullopt;
  return out;
}

}  // namespace dsm
