// optcm — the transport-facing seam shared by every deployment tier.
//
// A DatagramTransport moves opaque byte payloads between process ids with no
// delivery guarantee of its own: the simulated Network (dsm/sim/network.h)
// implements it with modeled latency and optional fault injection, and the
// real TcpTransport (dsm/net/tcp_transport.h) implements it over sockets —
// where a send to a disconnected peer is simply dropped, exactly like a
// fault-plan drop.  The ARQ layer (dsm/sim/reliable.h) is written against
// this interface only, so the same exactly-once repair machinery runs
// unchanged over both substrates.
//
// Delivery is the MessageSink half (dsm/common/sink.h): the transport calls
// `attach()`ed sinks from its own dispatch context — the simulator's event
// loop or the net event loop — honoring the one-logical-thread confinement
// contract the protocol stack requires.

#pragma once

#include <cstddef>

#include "dsm/common/sink.h"
#include "dsm/common/types.h"

namespace dsm {

class DatagramTransport {
 public:
  virtual ~DatagramTransport() = default;

  /// Register the delivery sink for process `p`.  The sink must outlive the
  /// transport or be replaced before destruction; implementations dispatch
  /// into it from their single delivery context.
  virtual void attach(ProcessId p, MessageSink& sink) = 0;

  /// Best-effort unicast of `payload` from `from` to `to`.  Implementations
  /// may drop (faults, disconnected peer) or reorder; callers needing
  /// exactly-once layer a ReliableNode on top.
  virtual void send(ProcessId from, ProcessId to, Payload payload) = 0;

  /// Number of process slots on this transport.
  [[nodiscard]] virtual std::size_t n_procs() const = 0;
};

}  // namespace dsm
