// optcm — lightweight contract checks (C++ Core Guidelines I.6/I.8 style).
//
// DSM_REQUIRE / DSM_ENSURE abort with a readable message on violation.  They
// are active in all build types: the protocols in this library are the object
// of study, so silently continuing past a broken invariant would invalidate
// every measurement downstream.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace dsm::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "optcm: %s violated: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace dsm::detail

/// Precondition check.
#define DSM_REQUIRE(expr)                                                     \
  ((expr) ? static_cast<void>(0)                                              \
          : ::dsm::detail::contract_failure("precondition", #expr, __FILE__, __LINE__))

/// Postcondition / invariant check.
#define DSM_ENSURE(expr)                                                      \
  ((expr) ? static_cast<void>(0)                                              \
          : ::dsm::detail::contract_failure("invariant", #expr, __FILE__, __LINE__))
