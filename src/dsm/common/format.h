// optcm — small string-formatting helpers used by printers and trace output.
//
// We deliberately avoid iostreams on hot paths and <format> (not fully
// available on the target toolchain); these helpers cover the few shapes the
// library needs: paper-style operation names, padded columns, joined lists.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dsm {

/// Left-justify `s` into a field of `width` (no truncation).
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

/// Right-justify `s` into a field of `width` (no truncation).
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);

/// Join the elements with a separator: {"a","b"} + ", " -> "a, b".
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Fixed-point decimal rendering with the given number of fraction digits.
[[nodiscard]] std::string fixed(double v, int digits);

/// "x_h" in paper notation (h is converted to 1-based).
[[nodiscard]] std::string var_name(std::uint32_t var0);

/// "p_i" in paper notation (i is converted to 1-based).
[[nodiscard]] std::string proc_name(std::uint32_t proc0);

/// Render a vector clock value like "[1,0,2]".
[[nodiscard]] std::string vec_to_string(const std::vector<std::uint64_t>& v);

}  // namespace dsm
