// optcm — minimal command-line flag parsing for the CLI tool and ad-hoc
// drivers.  Supports "--key=value", the detached form "--key value", and
// boolean "--switch"; everything else is positional.  Detached values are
// claimed lazily: the token after a bare "--key" stays positional unless a
// *value* accessor (get/get_int/get_double) asks for that key — get_bool
// never claims, so boolean switches followed by a positional argument keep
// working ("optcm replay trace.jsonl --trace").  Every accessor marks its
// flag consumed, so `unknown()` reports typos.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace dsm {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// String flag (marks it consumed).
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback);
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback);
  [[nodiscard]] double get_double(const std::string& name, double fallback);
  /// Boolean switch: present (with or without a value) means true.
  [[nodiscard]] bool get_bool(const std::string& name);

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Flags that were provided but never consumed — typo detection.
  [[nodiscard]] std::vector<std::string> unknown() const;

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> lookup(const std::string& name);
  /// Claim the positional that immediately followed a bare "--name", if any
  /// (removes it from the positional list).
  [[nodiscard]] std::optional<std::string> claim_detached(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
  std::vector<std::string> positional_;
  /// Bare flag -> index into positional_ of the token that followed it.
  std::map<std::string, std::size_t> pending_detached_;
};

}  // namespace dsm
