#include "dsm/common/flags.h"

#include <cstdlib>

namespace dsm {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      values_[body] = "";  // bare switch, or detached "--key value"
      // Remember where the next token will land among the positionals: a
      // value accessor may later claim it as this flag's detached value.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        pending_detached_[body] = positional_.size();
      }
    }
  }
}

std::optional<std::string> Flags::claim_detached(const std::string& name) {
  const auto it = pending_detached_.find(name);
  if (it == pending_detached_.end()) return std::nullopt;
  const std::size_t idx = it->second;
  pending_detached_.erase(it);
  if (idx >= positional_.size()) return std::nullopt;
  std::string value = positional_[idx];
  positional_.erase(positional_.begin() + static_cast<std::ptrdiff_t>(idx));
  for (auto& [key, j] : pending_detached_) {
    if (j > idx) --j;
  }
  return value;
}

std::optional<std::string> Flags::lookup(const std::string& name) {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_.insert(name);
  return it->second;
}

std::string Flags::get(const std::string& name, const std::string& fallback) {
  auto v = lookup(name);
  if (!v) return fallback;
  if (v->empty()) {
    if (auto detached = claim_detached(name)) return *detached;
  }
  return *v;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) {
  auto v = lookup(name);
  if (!v) return fallback;
  if (v->empty()) v = claim_detached(name);
  if (!v || v->empty()) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) {
  auto v = lookup(name);
  if (!v) return fallback;
  if (v->empty()) v = claim_detached(name);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name) { return lookup(name).has_value(); }

std::vector<std::string> Flags::unknown() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (consumed_.count(key) == 0) out.push_back(key);
  }
  return out;
}

}  // namespace dsm
