#include "dsm/common/bitmatrix.h"

#include <bit>

#include "dsm/common/contracts.h"

namespace dsm {

BitMatrix::BitMatrix(std::size_t n) : n_(n), bits_(n * ((n + 63) / 64), 0) {}

bool BitMatrix::get(std::size_t row, std::size_t col) const noexcept {
  DSM_REQUIRE(row < n_ && col < n_);
  const std::size_t w = row * words_per_row() + col / 64;
  return (bits_[w] >> (col % 64)) & 1U;
}

void BitMatrix::set(std::size_t row, std::size_t col) noexcept {
  DSM_REQUIRE(row < n_ && col < n_);
  bits_[row * words_per_row() + col / 64] |= (std::uint64_t{1} << (col % 64));
}

void BitMatrix::clear(std::size_t row, std::size_t col) noexcept {
  DSM_REQUIRE(row < n_ && col < n_);
  bits_[row * words_per_row() + col / 64] &= ~(std::uint64_t{1} << (col % 64));
}

void BitMatrix::or_row_into(std::size_t src_row, std::size_t dst_row) noexcept {
  DSM_REQUIRE(src_row < n_ && dst_row < n_);
  const std::size_t wpr = words_per_row();
  const std::uint64_t* src = bits_.data() + src_row * wpr;
  std::uint64_t* dst = bits_.data() + dst_row * wpr;
  for (std::size_t i = 0; i < wpr; ++i) dst[i] |= src[i];
}

std::size_t BitMatrix::row_popcount(std::size_t row) const noexcept {
  DSM_REQUIRE(row < n_);
  const std::size_t wpr = words_per_row();
  std::size_t count = 0;
  for (std::size_t i = 0; i < wpr; ++i) {
    count += static_cast<std::size_t>(std::popcount(bits_[row * wpr + i]));
  }
  return count;
}

std::vector<std::size_t> BitMatrix::row_members(std::size_t row) const {
  DSM_REQUIRE(row < n_);
  std::vector<std::size_t> out;
  out.reserve(row_popcount(row));
  const std::size_t wpr = words_per_row();
  for (std::size_t i = 0; i < wpr; ++i) {
    std::uint64_t word = bits_[row * wpr + i];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(i * 64 + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

bool BitMatrix::row_subset(std::size_t a, std::size_t b) const noexcept {
  DSM_REQUIRE(a < n_ && b < n_);
  const std::size_t wpr = words_per_row();
  for (std::size_t i = 0; i < wpr; ++i) {
    const std::uint64_t wa = bits_[a * wpr + i];
    const std::uint64_t wb = bits_[b * wpr + i];
    if ((wa & ~wb) != 0) return false;
  }
  return true;
}

}  // namespace dsm
