// optcm — common identifier and value types shared by every subsystem.
//
// The paper's model (Section 2): a finite set of sequential processes
// Π = {p_1 … p_n} sharing m memory locations x_1 … x_m.  We index both
// processes and variables from 0 internally; human-facing printers add 1 so
// output matches the paper's notation (p_1, x_1, …).

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dsm {

/// Index of a process in Π (0-based; the paper writes p_{i+1}).
using ProcessId = std::uint32_t;

/// Index of a shared variable (0-based; the paper writes x_{h+1}).
using VarId = std::uint32_t;

/// Values stored in memory locations.  The paper treats values as opaque; a
/// 64-bit integer is enough to encode any tag/payload our workloads need.
using Value = std::int64_t;

/// Sequence numbers: the k-th write issued by a process, 1-based exactly as
/// in the paper (Observation 2: w.Write_co[i] = k  ⇔  w is p_i's k-th write).
using SeqNo = std::uint64_t;

/// The initial value ⊥ of every memory location (Section 2).
inline constexpr Value kBottom = std::numeric_limits<Value>::min();

/// Identity of a write operation: (issuing process, 1-based write index).
/// This is the globally unique name the paper uses implicitly ("the k-th
/// write issued by p_i") and is the key of the write causality graph.
struct WriteId {
  ProcessId proc = 0;
  SeqNo seq = 0;  ///< 1-based; 0 means "no write" (reads of ⊥).

  [[nodiscard]] constexpr bool valid() const noexcept { return seq != 0; }

  friend constexpr bool operator==(const WriteId&, const WriteId&) noexcept = default;
  friend constexpr auto operator<=>(const WriteId&, const WriteId&) noexcept = default;
};

/// A write id that denotes "reads the initial value ⊥".
inline constexpr WriteId kNoWrite{};

/// Immutable, refcounted wire payload.  A broadcast hands the SAME buffer to
/// every receiver (and to ARQ retransmission queues and in-flight simulator
/// events) instead of copying bytes per destination; sharing is safe because
/// the contents are const and shared_ptr refcounting is atomic, so payloads
/// may cross threads (ThreadCluster mailboxes) without synchronization
/// beyond the handoff itself.
using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;

/// Seal an encoded buffer into a shareable payload.
[[nodiscard]] inline Payload make_payload(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

/// Human-readable name matching the paper's notation, e.g. "w_1^3" for the
/// third write of p_1 (paper index; proc is converted to 1-based).
[[nodiscard]] std::string to_string(const WriteId& w);

}  // namespace dsm

template <>
struct std::hash<dsm::WriteId> {
  std::size_t operator()(const dsm::WriteId& w) const noexcept {
    // splitmix-style mix of the two fields.
    std::uint64_t x = (std::uint64_t{w.proc} << 48) ^ w.seq;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
