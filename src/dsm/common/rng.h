// optcm — deterministic pseudo-random number generation.
//
// Everything random in this repository (workloads, latency models, property
// tests) flows through Rng so that a seed fully determines a run.  The
// generator is xoshiro256** seeded via SplitMix64 — fast, high quality, and
// trivially reproducible across platforms.  We implement the distributions we
// need ourselves because std::uniform_int_distribution and friends are not
// bit-reproducible across standard library implementations.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dsm {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** deterministic PRNG with explicit, portable distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xB0B1B2B3C0C1C2C3ULL) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// UniformRandomBitGenerator interface (for std::shuffle etc.).
  std::uint64_t operator()() noexcept { return next(); }
  [[nodiscard]] static constexpr std::uint64_t min() noexcept { return 0; }
  [[nodiscard]] static constexpr std::uint64_t max() noexcept { return ~std::uint64_t{0}; }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (Lemire).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) noexcept;

  /// Exponentially distributed double with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Log-normal sample with the given parameters of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Normal via Box–Muller (deterministic: no cached spare).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Derive an independent child generator (stream splitting).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Samples ranks from a Zipf(s) distribution over {0, …, n-1} by inverse
/// transform over the precomputed CDF.  Rank 0 is the most popular item.
class ZipfSampler {
 public:
  /// n >= 1; exponent s >= 0 (s = 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace dsm
