// optcm — square boolean matrix with 64-bit packed rows.
//
// Used by dsm::history to compute the transitive closure of the causal-order
// DAG: row r is the reachability set of vertex r.  Row-wise OR makes the
// closure O(V·E/64), comfortably fast for the ~10^4-operation histories the
// test and bench sweeps generate.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsm {

class BitMatrix {
 public:
  BitMatrix() = default;

  /// n-by-n matrix of zeros.
  explicit BitMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] bool get(std::size_t row, std::size_t col) const noexcept;
  void set(std::size_t row, std::size_t col) noexcept;
  void clear(std::size_t row, std::size_t col) noexcept;

  /// row |= other row.  The workhorse of transitive closure.
  void or_row_into(std::size_t src_row, std::size_t dst_row) noexcept;

  /// Number of set bits in a row.
  [[nodiscard]] std::size_t row_popcount(std::size_t row) const noexcept;

  /// Column indices of the set bits of a row, ascending.
  [[nodiscard]] std::vector<std::size_t> row_members(std::size_t row) const;

  /// True iff row `a` is a (non-strict) subset of row `b`.
  [[nodiscard]] bool row_subset(std::size_t a, std::size_t b) const noexcept;

  friend bool operator==(const BitMatrix&, const BitMatrix&) = default;

 private:
  [[nodiscard]] std::size_t words_per_row() const noexcept { return (n_ + 63) / 64; }

  std::size_t n_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace dsm
