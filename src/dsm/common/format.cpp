#include "dsm/common/format.h"

#include <cinttypes>
#include <cstdio>

#include "dsm/common/types.h"

namespace dsm {

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out{s};
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.append(width - s.size(), ' ');
  out.append(s);
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string var_name(std::uint32_t var0) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "x%" PRIu32, var0 + 1);
  return buf;
}

std::string proc_name(std::uint32_t proc0) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "p%" PRIu32, proc0 + 1);
  return buf;
}

std::string vec_to_string(const std::vector<std::uint64_t>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out.push_back(',');
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v[i]);
    out.append(buf);
  }
  out.push_back(']');
  return out;
}

std::string to_string(const WriteId& w) {
  if (!w.valid()) return "⊥";
  char buf[48];
  std::snprintf(buf, sizeof buf, "w%" PRIu32 "^%" PRIu64, w.proc + 1, w.seq);
  return buf;
}

}  // namespace dsm
