#include "dsm/common/rng.h"

#include <cmath>

#include "dsm/common/contracts.h"

namespace dsm {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 seeding as recommended by the xoshiro authors; guarantees the
  // state is never all-zero.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  DSM_REQUIRE(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  DSM_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t off = (span == 0) ? next() : below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + off);
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  DSM_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) noexcept { return uniform01() < p; }

double Rng::exponential(double mean) noexcept {
  DSM_REQUIRE(mean > 0.0);
  // Inverse transform; guard against log(0).
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(kTwoPi * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

Rng Rng::split() noexcept {
  // Mix two outputs into a fresh seed; child streams are statistically
  // independent of the parent continuation.
  std::uint64_t seed = next() ^ rotl(next(), 32) ^ 0xA5A5A5A55A5A5A5AULL;
  return Rng{seed};
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  DSM_REQUIRE(n >= 1);
  DSM_REQUIRE(s >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // defend against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  // Binary search for the first rank whose CDF exceeds u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace dsm
