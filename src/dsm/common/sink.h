// optcm — the transport-agnostic receiver interface.
//
// Both transports (the deterministic simulator's Network and the threaded
// runtime's mailboxes) push received byte payloads into a MessageSink; the
// ARQ layer and the recovery layer implement it so they can be stacked
// between the transport and a protocol.  Lives in common/ because it is the
// one interface the transport layers and the protocol-side adapters share.

#pragma once

#include <cstdint>
#include <span>

#include "dsm/common/types.h"

namespace dsm {

/// Receiver half of a process.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void deliver(ProcessId from, std::span<const std::uint8_t> bytes) = 0;
};

}  // namespace dsm
