#include "dsm/history/causality_graph.h"

#include <algorithm>

#include "dsm/common/contracts.h"

namespace dsm {

CausalityGraph::CausalityGraph(const CoRelation& co) : co_(&co) {
  const GlobalHistory& h = co.history();
  writes_.assign(h.writes().begin(), h.writes().end());
  preds_.resize(writes_.size());
  succs_.resize(writes_.size());
  index_of_.assign(h.size(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < writes_.size(); ++i) index_of_[writes_[i]] = i;

  // w ↦co⁰ w' ⇔ w ↦co w' ∧ ∄ write w'' : w ↦co w'' ↦co w'.
  for (std::size_t a = 0; a < writes_.size(); ++a) {
    for (std::size_t b = 0; b < writes_.size(); ++b) {
      if (a == b) continue;
      const OpRef wa = writes_[a];
      const OpRef wb = writes_[b];
      if (!co.precedes(wa, wb)) continue;
      bool immediate = true;
      for (const OpRef wm : writes_) {
        if (wm == wa || wm == wb) continue;
        if (co.precedes(wa, wm) && co.precedes(wm, wb)) {
          immediate = false;
          break;
        }
      }
      if (immediate) {
        succs_[a].push_back(wb);
        preds_[b].push_back(wa);
        ++edges_;
      }
    }
  }

  // Paper: "each write operation can have at most n immediate predecessors".
  for (const auto& p : preds_) {
    DSM_ENSURE(p.size() <= h.n_procs());
  }
}

std::size_t CausalityGraph::idx(OpRef w) const {
  DSM_REQUIRE(w < index_of_.size());
  const std::size_t i = index_of_[w];
  DSM_REQUIRE(i != static_cast<std::size_t>(-1));
  return i;
}

const std::vector<OpRef>& CausalityGraph::predecessors(OpRef write) const {
  return preds_[idx(write)];
}

const std::vector<OpRef>& CausalityGraph::successors(OpRef write) const {
  return succs_[idx(write)];
}

std::vector<OpRef> CausalityGraph::roots() const {
  std::vector<OpRef> out;
  for (std::size_t i = 0; i < writes_.size(); ++i) {
    if (preds_[i].empty()) out.push_back(writes_[i]);
  }
  return out;
}

std::size_t CausalityGraph::depth() const {
  // Longest path by DP over ↦co-respecting order.  Writes are appended to
  // the history in apply order at their issuer, which is consistent with
  // program order but not necessarily a global topological order, so iterate
  // to a fixpoint (the DAG is small; this is O(V·E) worst case).
  std::vector<std::size_t> dist(writes_.size(), 0);
  bool changed = true;
  std::size_t best = 0;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < writes_.size(); ++i) {
      for (const OpRef s : succs_[i]) {
        const std::size_t j = index_of_[s];
        if (dist[j] < dist[i] + 1) {
          dist[j] = dist[i] + 1;
          best = std::max(best, dist[j]);
          changed = true;
        }
      }
    }
  }
  return best;
}

std::string CausalityGraph::to_dot() const {
  const GlobalHistory& h = co_->history();
  std::string out = "digraph write_causality {\n  rankdir=TB;\n";
  for (const OpRef w : writes_) {
    out += "  \"" + op_to_string(h.op(w)) + "\";\n";
  }
  for (std::size_t i = 0; i < writes_.size(); ++i) {
    for (const OpRef s : succs_[i]) {
      out += "  \"" + op_to_string(h.op(writes_[i])) + "\" -> \"" +
             op_to_string(h.op(s)) + "\";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string CausalityGraph::to_ascii() const {
  const GlobalHistory& h = co_->history();
  std::string out;
  for (std::size_t i = 0; i < writes_.size(); ++i) {
    for (const OpRef s : succs_[i]) {
      out += op_to_string(h.op(writes_[i])) + " --co0--> " +
             op_to_string(h.op(s)) + "\n";
    }
  }
  for (const OpRef r : roots()) {
    if (succs_[idx(r)].empty() && preds_[idx(r)].empty()) {
      out += op_to_string(h.op(r)) + " (isolated)\n";
    }
  }
  return out;
}

}  // namespace dsm
