#include "dsm/history/checker.h"

#include "dsm/common/format.h"

namespace dsm {

const char* to_string(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kCyclicCausality: return "cyclic-causality";
    case ViolationKind::kDanglingReadsFrom: return "dangling-reads-from";
    case ViolationKind::kVariableMismatch: return "variable-mismatch";
    case ViolationKind::kValueMismatch: return "value-mismatch";
    case ViolationKind::kOverwrittenRead: return "overwritten-read";
    case ViolationKind::kStaleBottomRead: return "stale-bottom-read";
    case ViolationKind::kIllegalReturn: return "illegal-return";
  }
  return "?";
}

CheckResult ConsistencyChecker::check(const GlobalHistory& h) {
  const auto co = CoRelation::build(h);
  if (!co) {
    CheckResult result;
    // Distinguish "cites a missing write" from a genuine cycle: re-scan the
    // reads for dangling references first.
    for (OpRef r = 0; r < h.size(); ++r) {
      const Operation& op = h.op(r);
      if (op.is_read() && op.write_id.valid() && !h.find_write(op.write_id)) {
        result.violations.push_back(
            {ViolationKind::kDanglingReadsFrom, r, kInvalidOp,
             op_to_string(op) + " reads from unrecorded write " +
                 to_string(op.write_id)});
      }
    }
    if (result.violations.empty()) {
      result.violations.push_back(
          {ViolationKind::kCyclicCausality, kInvalidOp, kInvalidOp,
           "recorded process-order + reads-from relation contains a cycle"});
    }
    return result;
  }
  return check(h, *co);
}

CheckResult ConsistencyChecker::check(const GlobalHistory& h,
                                      const CoRelation& co) {
  CheckResult result;

  for (OpRef r = 0; r < h.size(); ++r) {
    const Operation& read = h.op(r);
    if (!read.is_read()) continue;
    ++result.reads_checked;

    if (!read.write_id.valid()) {
      // Read of ⊥: Definition 1 (second clause of ↦ro) — no write on this
      // variable may causally precede the read.
      for (const OpRef wref : h.writes()) {
        const Operation& w = h.op(wref);
        if (w.var == read.var && co.precedes(wref, r)) {
          result.violations.push_back(
              {ViolationKind::kStaleBottomRead, r, wref,
               op_to_string(read) + " returned ⊥ but " + op_to_string(w) +
                   " is in its causal past"});
          break;  // one witness per read is enough
        }
      }
      continue;
    }

    const auto cited = h.find_write(read.write_id);
    if (!cited) {
      result.violations.push_back(
          {ViolationKind::kDanglingReadsFrom, r, kInvalidOp,
           op_to_string(read) + " reads from unrecorded write " +
               to_string(read.write_id)});
      continue;
    }
    const Operation& w = h.op(*cited);
    if (w.var != read.var) {
      result.violations.push_back(
          {ViolationKind::kVariableMismatch, r, *cited,
           op_to_string(read) + " cites " + op_to_string(w) +
               " on a different variable"});
      continue;
    }
    if (w.value != read.value) {
      result.violations.push_back(
          {ViolationKind::kValueMismatch, r, *cited,
           op_to_string(read) + " cites " + op_to_string(w) +
               " but the values differ"});
      continue;
    }

    // Definition 1's second condition: no write on the same variable strictly
    // between the cited write and the read in ↦co.
    for (const OpRef wref : h.writes()) {
      if (wref == *cited) continue;
      const Operation& other = h.op(wref);
      if (other.var != read.var) continue;
      if (co.precedes(*cited, wref) && co.precedes(wref, r)) {
        result.violations.push_back(
            {ViolationKind::kOverwrittenRead, r, wref,
             op_to_string(read) + " returned a value overwritten by " +
                 op_to_string(other)});
        break;
      }
    }
  }
  return result;
}

}  // namespace dsm
