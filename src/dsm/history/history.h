// optcm — global history container (paper Section 2).

#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsm/common/types.h"
#include "dsm/history/operation.h"

namespace dsm {

/// H = ⟨h_1 … h_n⟩ plus the recorded ↦ro relation, flattened for O(1)
/// OpRef-based access.  Append-only: operations are added in each process's
/// program order, exactly as a protocol run (or a scripted example) emits
/// them.
class GlobalHistory {
 public:
  GlobalHistory(std::size_t n_procs, std::size_t n_vars);

  /// Record the next write of process p.  The write's 1-based sequence number
  /// is assigned automatically (writes_by(p).size() + 1).  Returns its id.
  WriteId add_write(ProcessId p, VarId x, Value v);

  /// Record the next read of process p returning value v written by
  /// `reads_from` (use kNoWrite for a read of the initial value ⊥).
  OpRef add_read(ProcessId p, VarId x, Value v, WriteId reads_from);

  /// Record the next typed mutation of process p on x: spec-defined opcode
  /// with primary operand `arg` (stored in value) and secondary `arg2`.
  /// Sequence numbering is shared with add_write — a typed mutation IS a
  /// write for causal purposes.  Returns its id.
  WriteId add_mutation(ProcessId p, VarId x, SpecId spec, OpCode opcode,
                       Value arg, Value arg2);

  /// Record the next typed accessor of process p on x: it returned
  /// `returned` under query operand `arg`; `reads_from` tags the last
  /// mutation applied locally (kNoWrite if none) and `visible` snapshots the
  /// per-sender applied-mutation counts at accessor time (may be empty).
  OpRef add_accessor(ProcessId p, VarId x, SpecId spec, OpCode opcode,
                     Value arg, Value returned, WriteId reads_from,
                     std::vector<std::uint64_t> visible);

  [[nodiscard]] std::size_t n_procs() const noexcept { return n_procs_; }
  [[nodiscard]] std::size_t n_vars() const noexcept { return n_vars_; }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }

  [[nodiscard]] const Operation& op(OpRef r) const;
  [[nodiscard]] std::span<const Operation> all_ops() const noexcept { return ops_; }

  /// OpRefs of p's local history, in program order.
  [[nodiscard]] std::span<const OpRef> local(ProcessId p) const;

  /// OpRef of the write with the given identity, if recorded.
  [[nodiscard]] std::optional<OpRef> find_write(WriteId w) const;

  /// All writes in the history, in recording order.
  [[nodiscard]] std::span<const OpRef> writes() const noexcept { return writes_; }

  /// Number of writes issued by process p so far.
  [[nodiscard]] SeqNo write_count(ProcessId p) const;

  /// Multi-line rendering in the paper's example style ("h1: w1(x1)a; …").
  [[nodiscard]] std::string str() const;

 private:
  OpRef push(Operation op);

  std::size_t n_procs_;
  std::size_t n_vars_;
  std::vector<Operation> ops_;                 // flattened, append order
  std::vector<std::vector<OpRef>> by_proc_;    // program order per process
  std::vector<OpRef> writes_;                  // all writes
  std::unordered_map<WriteId, OpRef> write_index_;
  std::vector<SeqNo> write_counts_;            // per process
};

}  // namespace dsm
