// optcm — the causal-order relation ↦co, recomputed from a history.
//
// Paper Section 2: o₁ ↦co o₂ iff (process order) ∨ (read-from) ∨ (transitive
// closure of the two).  We build the DAG whose edges are consecutive
// program-order pairs plus write→read ↦ro pairs, then take the transitive
// closure over a packed bit-matrix.  If the recorded relation is cyclic the
// input is not a history at all (↦co must be a partial order) and build()
// reports it.
//
// This module is the *oracle* side of the repository: protocols never call
// it; tests, the checker and the optimality auditor use it to judge protocol
// behaviour independently.

#pragma once

#include <optional>
#include <vector>

#include "dsm/common/bitmatrix.h"
#include "dsm/history/history.h"

namespace dsm {

class CoRelation {
 public:
  /// Computes ↦co for `h`.  Returns std::nullopt if the recorded relation is
  /// cyclic (then `h` is not a valid history).  `h` must outlive the result.
  [[nodiscard]] static std::optional<CoRelation> build(const GlobalHistory& h);

  /// a ↦co b (strict: an operation is not in its own causal past).
  [[nodiscard]] bool precedes(OpRef a, OpRef b) const noexcept;

  /// a ‖co b.
  [[nodiscard]] bool concurrent(OpRef a, OpRef b) const noexcept;

  /// ↓(o, ↦co) — the causal past of `o`, ascending OpRefs.
  [[nodiscard]] std::vector<OpRef> causal_past(OpRef o) const;

  /// Writes in ↓(o, ↦co): the set whose applies form X_co-safe(apply_k(o))
  /// when o is a write (paper Definition 4).
  [[nodiscard]] std::vector<OpRef> write_causal_past(OpRef o) const;

  /// w ↦co w' for two *writes* identified by WriteId.  Both must exist in the
  /// underlying history.
  [[nodiscard]] bool write_precedes(WriteId w, WriteId w2) const;

  /// w ‖co w' for two writes.
  [[nodiscard]] bool write_concurrent(WriteId w, WriteId w2) const;

  /// |↓(o, ↦co)|.
  [[nodiscard]] std::size_t causal_past_size(OpRef o) const noexcept;

  [[nodiscard]] const GlobalHistory& history() const noexcept { return *h_; }

 private:
  explicit CoRelation(const GlobalHistory& h) : h_(&h) {}

  const GlobalHistory* h_;
  BitMatrix reach_;  // reach_[a][b] == true ⇔ a ↦co b
};

}  // namespace dsm
