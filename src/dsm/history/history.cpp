#include "dsm/history/history.h"

#include <cinttypes>
#include <cstdio>

#include "dsm/common/contracts.h"
#include "dsm/common/format.h"

namespace dsm {

std::string op_to_string(const Operation& op) {
  // Values 0..25 print as a..z so the paper's examples read naturally.
  std::string val;
  if (op.value == kBottom) {
    val = "⊥";
  } else if (op.value >= 0 && op.value < 26) {
    val.push_back(static_cast<char>('a' + op.value));
  } else {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, op.value);
    val = buf;
  }
  char buf[64];
  if (op.spec == SpecId::kRegister) {
    std::snprintf(buf, sizeof buf, "%c%u(x%u)%s", op.is_write() ? 'w' : 'r',
                  op.proc + 1, op.var + 1, val.c_str());
  } else {
    // Typed rendering: opcode mnemonic instead of w/r, e.g. "inc1(x2)c".
    std::snprintf(buf, sizeof buf, "%s%u(x%u)%s",
                  std::string(to_string(op.opcode)).c_str(), op.proc + 1,
                  op.var + 1, val.c_str());
  }
  return buf;
}

GlobalHistory::GlobalHistory(std::size_t n_procs, std::size_t n_vars)
    : n_procs_(n_procs),
      n_vars_(n_vars),
      by_proc_(n_procs),
      write_counts_(n_procs, 0) {
  DSM_REQUIRE(n_procs >= 1);
  DSM_REQUIRE(n_vars >= 1);
}

OpRef GlobalHistory::push(Operation op) {
  const auto ref = static_cast<OpRef>(ops_.size());
  op.po_index = by_proc_[op.proc].size();
  ops_.push_back(op);
  by_proc_[op.proc].push_back(ref);
  return ref;
}

WriteId GlobalHistory::add_write(ProcessId p, VarId x, Value v) {
  DSM_REQUIRE(p < n_procs_);
  DSM_REQUIRE(x < n_vars_);
  Operation op;
  op.proc = p;
  op.kind = OpKind::kWrite;
  op.var = x;
  op.value = v;
  op.write_id = WriteId{p, ++write_counts_[p]};
  const OpRef ref = push(op);
  writes_.push_back(ref);
  write_index_.emplace(op.write_id, ref);
  return op.write_id;
}

OpRef GlobalHistory::add_read(ProcessId p, VarId x, Value v, WriteId reads_from) {
  DSM_REQUIRE(p < n_procs_);
  DSM_REQUIRE(x < n_vars_);
  Operation op;
  op.proc = p;
  op.kind = OpKind::kRead;
  op.var = x;
  op.value = v;
  op.write_id = reads_from;
  return push(op);
}

WriteId GlobalHistory::add_mutation(ProcessId p, VarId x, SpecId spec,
                                    OpCode opcode, Value arg, Value arg2) {
  DSM_REQUIRE(p < n_procs_);
  DSM_REQUIRE(x < n_vars_);
  DSM_REQUIRE(is_mutation(opcode));
  Operation op;
  op.proc = p;
  op.kind = OpKind::kWrite;
  op.var = x;
  op.value = arg;
  op.write_id = WriteId{p, ++write_counts_[p]};
  op.spec = spec;
  op.opcode = opcode;
  op.arg2 = arg2;
  const OpRef ref = push(std::move(op));
  writes_.push_back(ref);
  write_index_.emplace(ops_[ref].write_id, ref);
  return ops_[ref].write_id;
}

OpRef GlobalHistory::add_accessor(ProcessId p, VarId x, SpecId spec,
                                  OpCode opcode, Value arg, Value returned,
                                  WriteId reads_from,
                                  std::vector<std::uint64_t> visible) {
  DSM_REQUIRE(p < n_procs_);
  DSM_REQUIRE(x < n_vars_);
  DSM_REQUIRE(is_accessor(opcode));
  Operation op;
  op.proc = p;
  op.kind = OpKind::kRead;
  op.var = x;
  op.value = returned;
  op.write_id = reads_from;
  op.spec = spec;
  op.opcode = opcode;
  op.arg2 = arg;
  op.visible = std::move(visible);
  return push(std::move(op));
}

const Operation& GlobalHistory::op(OpRef r) const {
  DSM_REQUIRE(r < ops_.size());
  return ops_[r];
}

std::span<const OpRef> GlobalHistory::local(ProcessId p) const {
  DSM_REQUIRE(p < n_procs_);
  return by_proc_[p];
}

std::optional<OpRef> GlobalHistory::find_write(WriteId w) const {
  const auto it = write_index_.find(w);
  if (it == write_index_.end()) return std::nullopt;
  return it->second;
}

SeqNo GlobalHistory::write_count(ProcessId p) const {
  DSM_REQUIRE(p < n_procs_);
  return write_counts_[p];
}

std::string GlobalHistory::str() const {
  std::string out;
  for (ProcessId p = 0; p < n_procs_; ++p) {
    out += "h" + std::to_string(p + 1) + ": ";
    std::vector<std::string> parts;
    parts.reserve(by_proc_[p].size());
    for (const OpRef r : by_proc_[p]) parts.push_back(op_to_string(ops_[r]));
    out += join(parts, "; ");
    out += "\n";
  }
  return out;
}

}  // namespace dsm
