#include "dsm/history/co_relation.h"

#include <algorithm>

#include "dsm/common/contracts.h"

namespace dsm {

std::optional<CoRelation> CoRelation::build(const GlobalHistory& h) {
  const std::size_t n = h.size();
  CoRelation co{h};
  co.reach_ = BitMatrix{n};

  // Adjacency: successors of each node under the two base relations.
  std::vector<std::vector<OpRef>> succ(n);
  std::vector<std::uint32_t> indegree(n, 0);

  const auto add_edge = [&](OpRef from, OpRef to) {
    succ[from].push_back(to);
    ++indegree[to];
  };

  // Process order: consecutive operations of each local history.
  for (ProcessId p = 0; p < h.n_procs(); ++p) {
    const auto ops = h.local(p);
    for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
      add_edge(ops[i], ops[i + 1]);
    }
  }

  // Read-from: the write each read returned.  A read whose writer is not in
  // the history is a recording error; treat as unbuildable (the checker
  // reports the precise violation separately).
  for (OpRef r = 0; r < n; ++r) {
    const Operation& op = h.op(r);
    if (op.is_read() && op.write_id.valid()) {
      const auto w = h.find_write(op.write_id);
      if (!w) return std::nullopt;
      if (*w != r) add_edge(*w, r);
    }
  }

  // Kahn topological order; a leftover node means a cycle.
  std::vector<OpRef> order;
  order.reserve(n);
  std::vector<OpRef> queue;
  for (OpRef v = 0; v < n; ++v) {
    if (indegree[v] == 0) queue.push_back(v);
  }
  while (!queue.empty()) {
    const OpRef v = queue.back();
    queue.pop_back();
    order.push_back(v);
    for (const OpRef s : succ[v]) {
      if (--indegree[s] == 0) queue.push_back(s);
    }
  }
  if (order.size() != n) return std::nullopt;  // cyclic

  // Reverse topological accumulation: reach(v) = ∪_{v→s} ({s} ∪ reach(s)).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpRef v = *it;
    for (const OpRef s : succ[v]) {
      co.reach_.set(v, s);
      co.reach_.or_row_into(s, v);
    }
  }
  return co;
}

bool CoRelation::precedes(OpRef a, OpRef b) const noexcept {
  return a != b && reach_.get(a, b);
}

bool CoRelation::concurrent(OpRef a, OpRef b) const noexcept {
  return a != b && !reach_.get(a, b) && !reach_.get(b, a);
}

std::vector<OpRef> CoRelation::causal_past(OpRef o) const {
  DSM_REQUIRE(o < h_->size());
  std::vector<OpRef> past;
  for (OpRef v = 0; v < h_->size(); ++v) {
    if (v != o && reach_.get(v, o)) past.push_back(v);
  }
  return past;
}

std::vector<OpRef> CoRelation::write_causal_past(OpRef o) const {
  auto past = causal_past(o);
  std::erase_if(past, [this](OpRef v) { return !h_->op(v).is_write(); });
  return past;
}

bool CoRelation::write_precedes(WriteId w, WriteId w2) const {
  const auto a = h_->find_write(w);
  const auto b = h_->find_write(w2);
  DSM_REQUIRE(a.has_value() && b.has_value());
  return precedes(*a, *b);
}

bool CoRelation::write_concurrent(WriteId w, WriteId w2) const {
  const auto a = h_->find_write(w);
  const auto b = h_->find_write(w2);
  DSM_REQUIRE(a.has_value() && b.has_value());
  return concurrent(*a, *b);
}

std::size_t CoRelation::causal_past_size(OpRef o) const noexcept {
  // row_popcount counts successors, not predecessors, so count column
  // membership explicitly.
  std::size_t count = 0;
  for (OpRef v = 0; v < h_->size(); ++v) {
    if (v != o && reach_.get(v, o)) ++count;
  }
  return count;
}

}  // namespace dsm
