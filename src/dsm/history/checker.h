// optcm — causal-consistency checker (paper Definitions 1–2; register case
// of the spec-driven legality rule).
//
// The general legality rule (Mostéfaoui–Perrin–Raynal, PAPERS.md
// arXiv:1802.00706): an accessor's return value is legal iff it is
// producible by SOME linearization of the accessor's causally visible
// mutations — consistent with ↦co — under the variable's sequential object
// specification.  dsm/objects/spec_checker.h implements that rule for every
// registered spec; THIS checker is its read/write-register special case,
// where the rule collapses to the paper's Definition 1:
//   r(x)v is legal iff ∃ w(x)v ↦co r(x)v and ∄ w(x)v' with
//   w(x)v ↦co w(x)v' ↦co r(x)v;  a read with no ↦ro-predecessor must return ⊥
//   and no write on x may be in its causal past.
// The SpecChecker run with an all-register schema reproduces this checker's
// verdicts byte-for-byte (the differential oracle in tests/).
//
// The checker is deliberately independent of every protocol implementation:
// it recomputes ↦co from the recorded program order + ↦ro alone, then
// validates each read against the definition.  It also sanity-checks the
// recording itself (reads-from must point at an existing write on the same
// variable with the same value).

#pragma once

#include <string>
#include <vector>

#include "dsm/history/co_relation.h"
#include "dsm/history/history.h"

namespace dsm {

enum class ViolationKind : std::uint8_t {
  kCyclicCausality,    ///< recorded ↦co is not a partial order
  kDanglingReadsFrom,  ///< read cites a write that does not exist
  kVariableMismatch,   ///< read cites a write on a different variable
  kValueMismatch,      ///< read's value differs from the cited write's value
  kOverwrittenRead,    ///< ∃ w' on x with w ↦co w' ↦co r (Definition 1)
  kStaleBottomRead,    ///< read of ⊥ but a write on x is in the read's causal past
  /// Typed objects only (emitted by dsm/objects/spec_checker.h): no
  /// linearization of the accessor's visible mutations produces its return.
  kIllegalReturn,
};

[[nodiscard]] const char* to_string(ViolationKind k) noexcept;

struct Violation {
  ViolationKind kind;
  OpRef read = kInvalidOp;       ///< offending read (if applicable)
  OpRef write = kInvalidOp;      ///< intervening / cited write (if applicable)
  std::string detail;            ///< human-readable explanation
};

struct CheckResult {
  std::vector<Violation> violations;
  std::size_t reads_checked = 0;
  /// Linearization-search work done by the spec checker (always 0 here: the
  /// register rule needs no enumeration).  Feeds the
  /// checker_linearizations_explored metric.
  std::uint64_t linearizations_explored = 0;

  [[nodiscard]] bool consistent() const noexcept { return violations.empty(); }
};

class ConsistencyChecker {
 public:
  /// Full check of Definition 2 over the history.
  [[nodiscard]] static CheckResult check(const GlobalHistory& h);

  /// Same, but reuses an already-built ↦co (avoids recomputing the closure
  /// when callers also need the relation for other purposes).
  [[nodiscard]] static CheckResult check(const GlobalHistory& h,
                                         const CoRelation& co);
};

}  // namespace dsm
