// optcm — read/write operations of the shared-memory model (paper Section 2).
//
// A local history h_i is the sequence of operations issued by p_i; a global
// history H = ⟨h_1 … h_n⟩.  We record, for every read, the identity of the
// write it returned (the ↦ro relation) — the runtime can always produce it
// because stored values carry their writer's (process, seq) tag.  From
// process order plus ↦ro the checker recomputes ↦co from scratch.

#pragma once

#include <cstdint>
#include <string>

#include "dsm/common/types.h"

namespace dsm {

enum class OpKind : std::uint8_t { kWrite, kRead };

/// Global index of an operation inside a GlobalHistory (flattened).
using OpRef = std::uint32_t;

inline constexpr OpRef kInvalidOp = ~OpRef{0};

struct Operation {
  ProcessId proc = 0;   ///< issuing process
  SeqNo po_index = 0;   ///< 0-based position in the issuer's local history
  OpKind kind = OpKind::kWrite;
  VarId var = 0;
  Value value = kBottom;
  /// For writes: this operation's own identity (proc, k-th write, 1-based).
  /// For reads: the write whose value was returned; kNoWrite for reads of ⊥.
  WriteId write_id;

  [[nodiscard]] bool is_write() const noexcept { return kind == OpKind::kWrite; }
  [[nodiscard]] bool is_read() const noexcept { return kind == OpKind::kRead; }

  friend bool operator==(const Operation&, const Operation&) = default;
};

/// Paper-style rendering: "w1(x1)a" / "r2(x2)b"; values are printed as
/// integers (or the letter a..z when small, to match the paper's examples).
[[nodiscard]] std::string op_to_string(const Operation& op);

}  // namespace dsm
