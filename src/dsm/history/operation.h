// optcm — operations of the shared-memory model (paper Section 2, extended
// to typed objects per Mostéfaoui–Perrin–Raynal).
//
// A local history h_i is the sequence of operations issued by p_i; a global
// history H = ⟨h_1 … h_n⟩.  We record, for every read, the identity of the
// write it returned (the ↦ro relation) — the runtime can always produce it
// because stored values carry their writer's (process, seq) tag.  From
// process order plus ↦ro the checker recomputes ↦co from scratch.
//
// Typed objects generalize the two-kind model: an operation carries a spec
// id, an opcode and up to two operands.  OpKind stays as the coarse class —
// every typed mutation IS a write (replicated, assigned a WriteId) and every
// typed accessor IS a read (local, tagged with the last applied mutation) —
// so ↦co, the protocols and the recorder are oblivious to specs.  The typed
// fields (spec, opcode, arg2, visible) are meaningful only when
// spec != SpecId::kRegister; plain register histories are bit-for-bit what
// they were before the extension.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsm/common/types.h"
#include "dsm/objects/opcodes.h"

namespace dsm {

enum class OpKind : std::uint8_t { kWrite, kRead };

/// Global index of an operation inside a GlobalHistory (flattened).
using OpRef = std::uint32_t;

inline constexpr OpRef kInvalidOp = ~OpRef{0};

struct Operation {
  ProcessId proc = 0;   ///< issuing process
  SeqNo po_index = 0;   ///< 0-based position in the issuer's local history
  OpKind kind = OpKind::kWrite;
  VarId var = 0;
  Value value = kBottom;
  /// For writes: this operation's own identity (proc, k-th write, 1-based).
  /// For reads: the write whose value was returned; kNoWrite for reads of ⊥.
  WriteId write_id;
  /// Sequential spec governing `var`; kRegister for the classic model (then
  /// every field below is at its default and ignored).
  SpecId spec = SpecId::kRegister;
  /// Typed opcode.  Mutations: value holds the primary operand, arg2 the
  /// secondary (CAS desired value).  Accessors: value holds the RETURNED
  /// value, arg2 the query operand (e.g. contains(arg2)).
  OpCode opcode = OpCode::kWrite;
  Value arg2 = 0;
  /// Accessors only: per-sender counts of mutations on `var` applied at the
  /// issuing replica when the accessor ran — the accessor's visible set, as
  /// witnessed by the ObjectStore (empty when not recorded).
  std::vector<std::uint64_t> visible;

  [[nodiscard]] bool is_write() const noexcept { return kind == OpKind::kWrite; }
  [[nodiscard]] bool is_read() const noexcept { return kind == OpKind::kRead; }

  friend bool operator==(const Operation&, const Operation&) = default;
};

/// Paper-style rendering: "w1(x1)a" / "r2(x2)b"; values are printed as
/// integers (or the letter a..z when small, to match the paper's examples).
[[nodiscard]] std::string op_to_string(const Operation& op);

}  // namespace dsm
