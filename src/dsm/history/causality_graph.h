// optcm — the write causality graph (paper Section 4.3, Figure 7).
//
// Vertices are the writes of a history; there is an edge w → w' iff
// w ↦co⁰ w', i.e. w ↦co w' with no *write* w'' such that w ↦co w'' ↦co w'.
// The paper notes each write has at most n immediate predecessors (one per
// process) — asserted here and verified by property tests.
//
// The graph powers the Figure 7 reproduction and gives the auditor the
// minimal dependency frontier of each write.

#pragma once

#include <string>
#include <vector>

#include "dsm/history/co_relation.h"

namespace dsm {

class CausalityGraph {
 public:
  /// Builds the graph from an already-computed ↦co.  `co` (and its history)
  /// must outlive the graph.
  explicit CausalityGraph(const CoRelation& co);

  /// Immediate predecessors (↦co⁰) of a write, by OpRef.
  [[nodiscard]] const std::vector<OpRef>& predecessors(OpRef write) const;

  /// Immediate successors of a write, by OpRef.
  [[nodiscard]] const std::vector<OpRef>& successors(OpRef write) const;

  /// All writes with no immediate predecessor (sources of the DAG).
  [[nodiscard]] std::vector<OpRef> roots() const;

  /// Total number of ↦co⁰ edges.
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Longest path length (in edges) through the DAG — the depth of the
  /// causal dependency chain, an upper bound on forced apply serialization.
  [[nodiscard]] std::size_t depth() const;

  /// GraphViz DOT rendering (paper-style labels: "w1(x1)a").
  [[nodiscard]] std::string to_dot() const;

  /// Compact ASCII rendering: one line per edge, topologically sorted.
  [[nodiscard]] std::string to_ascii() const;

 private:
  const CoRelation* co_;
  std::vector<OpRef> writes_;                    // vertex set
  std::vector<std::vector<OpRef>> preds_;        // indexed like writes_
  std::vector<std::vector<OpRef>> succs_;
  std::vector<std::size_t> index_of_;            // OpRef -> position in writes_
  std::size_t edges_ = 0;

  [[nodiscard]] std::size_t idx(OpRef w) const;
};

}  // namespace dsm
