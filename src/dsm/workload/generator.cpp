#include "dsm/workload/generator.h"

#include <algorithm>

#include "dsm/common/contracts.h"
#include "dsm/common/format.h"

namespace dsm {

const char* to_string(AccessPattern p) noexcept {
  switch (p) {
    case AccessPattern::kUniform: return "uniform";
    case AccessPattern::kZipf: return "zipf";
    case AccessPattern::kPartitioned: return "partitioned";
    case AccessPattern::kHotspot: return "hotspot";
  }
  return "?";
}

std::string WorkloadSpec::describe() const {
  return std::string(to_string(pattern)) + "(n=" + std::to_string(n_procs) +
         ", m=" + std::to_string(n_vars) +
         ", ops=" + std::to_string(ops_per_proc) +
         ", wf=" + fixed(write_fraction, 2) + ", seed=" + std::to_string(seed) +
         ")";
}

std::vector<Script> generate_workload(const WorkloadSpec& spec) {
  DSM_REQUIRE(spec.n_procs >= 1);
  DSM_REQUIRE(spec.n_vars >= 1);
  DSM_REQUIRE(spec.write_fraction >= 0.0 && spec.write_fraction <= 1.0);

  Rng master(spec.seed);
  const ZipfSampler zipf(spec.n_vars, spec.zipf_s);

  std::vector<Script> scripts(spec.n_procs);
  for (ProcessId p = 0; p < spec.n_procs; ++p) {
    Rng rng = master.split();
    Script& script = scripts[p];
    script.reserve(spec.ops_per_proc);

    // Shard bounds for kPartitioned (contiguous, evenly split).
    const std::size_t shard_lo = p * spec.n_vars / spec.n_procs;
    const std::size_t shard_hi = (p + 1) * spec.n_vars / spec.n_procs;
    const std::size_t shard_size = std::max<std::size_t>(1, shard_hi - shard_lo);

    SeqNo writes = 0;
    for (std::size_t i = 0; i < spec.ops_per_proc; ++i) {
      const bool is_write = rng.chance(spec.write_fraction);

      VarId var = 0;
      switch (spec.pattern) {
        case AccessPattern::kUniform:
          var = static_cast<VarId>(rng.below(spec.n_vars));
          break;
        case AccessPattern::kZipf:
          var = static_cast<VarId>(zipf.sample(rng));
          break;
        case AccessPattern::kPartitioned:
          if (is_write && !rng.chance(spec.remote_write_fraction)) {
            var = static_cast<VarId>(shard_lo + rng.below(shard_size));
          } else {
            var = static_cast<VarId>(rng.below(spec.n_vars));
          }
          break;
        case AccessPattern::kHotspot:
          var = rng.chance(spec.hotspot_fraction)
                    ? 0
                    : static_cast<VarId>(rng.below(spec.n_vars));
          break;
      }

      const auto gap = static_cast<SimTime>(
          rng.exponential(static_cast<double>(spec.mean_gap)));

      if (is_write) {
        ++writes;
        // Globally unique, trace-friendly value: issuer * 10^6 + seq.
        const Value v = static_cast<Value>(p) * 1'000'000 +
                        static_cast<Value>(writes);
        script.push_back(write_step(gap, var, v));
      } else {
        script.push_back(read_step(gap, var));
      }
    }
  }
  return scripts;
}

std::vector<Script> generate_replica_workload(const WorkloadSpec& spec,
                                              const ReplicationMap& map) {
  DSM_REQUIRE(map.n_procs() == spec.n_procs);
  DSM_REQUIRE(map.n_vars() == spec.n_vars);

  Rng master(spec.seed);
  std::vector<Script> scripts(spec.n_procs);
  for (ProcessId p = 0; p < spec.n_procs; ++p) {
    Rng rng = master.split();
    const auto shard = map.vars_of(p);
    DSM_REQUIRE(!shard.empty() &&
                "every process must replicate at least one variable");
    Script& script = scripts[p];
    script.reserve(spec.ops_per_proc);
    SeqNo writes = 0;
    for (std::size_t i = 0; i < spec.ops_per_proc; ++i) {
      const VarId var = shard[rng.below(shard.size())];
      const auto gap = static_cast<SimTime>(
          rng.exponential(static_cast<double>(spec.mean_gap)));
      if (rng.chance(spec.write_fraction)) {
        ++writes;
        const Value v = static_cast<Value>(p) * 1'000'000 +
                        static_cast<Value>(writes);
        script.push_back(write_step(gap, var, v));
      } else {
        script.push_back(read_step(gap, var));
      }
    }
  }
  return scripts;
}

std::vector<Script> generate_subscriber_workload(const WorkloadSpec& spec,
                                                 const SubscriptionMap& map) {
  DSM_REQUIRE(map.n_procs() == spec.n_procs);
  DSM_REQUIRE(map.n_vars() == spec.n_vars);

  Rng master(spec.seed);
  std::vector<Script> scripts(spec.n_procs);
  for (ProcessId p = 0; p < spec.n_procs; ++p) {
    Rng rng = master.split();
    const auto shard = map.vars_of(p);
    DSM_REQUIRE(!shard.empty() &&
                "every process must subscribe to at least one variable");
    // Zipf over the process's subscribed set: rank k in the set gets the
    // k-th Zipf weight, so the globally-lowest subscribed variable is the
    // hot key of each shard.
    const ZipfSampler zipf(shard.size(), spec.zipf_s);
    Script& script = scripts[p];
    script.reserve(spec.ops_per_proc);
    SeqNo writes = 0;
    for (std::size_t i = 0; i < spec.ops_per_proc; ++i) {
      const VarId var = spec.pattern == AccessPattern::kZipf
                            ? shard[zipf.sample(rng)]
                            : shard[rng.below(shard.size())];
      const auto gap = static_cast<SimTime>(
          rng.exponential(static_cast<double>(spec.mean_gap)));
      if (rng.chance(spec.write_fraction)) {
        ++writes;
        const Value v = static_cast<Value>(p) * 1'000'000 +
                        static_cast<Value>(writes);
        script.push_back(write_step(gap, var, v));
      } else {
        script.push_back(read_step(gap, var));
      }
    }
  }
  return scripts;
}

}  // namespace dsm
