#include "dsm/workload/generator.h"

#include <algorithm>
#include <charconv>

#include "dsm/common/contracts.h"
#include "dsm/common/format.h"

namespace dsm {

const char* to_string(AccessPattern p) noexcept {
  switch (p) {
    case AccessPattern::kUniform: return "uniform";
    case AccessPattern::kZipf: return "zipf";
    case AccessPattern::kPartitioned: return "partitioned";
    case AccessPattern::kHotspot: return "hotspot";
  }
  return "?";
}

std::string WorkloadSpec::describe() const {
  return std::string(to_string(pattern)) + "(n=" + std::to_string(n_procs) +
         ", m=" + std::to_string(n_vars) +
         ", ops=" + std::to_string(ops_per_proc) +
         ", wf=" + fixed(write_fraction, 2) + ", seed=" + std::to_string(seed) +
         ")";
}

std::vector<Script> generate_workload(const WorkloadSpec& spec) {
  DSM_REQUIRE(spec.n_procs >= 1);
  DSM_REQUIRE(spec.n_vars >= 1);
  DSM_REQUIRE(spec.write_fraction >= 0.0 && spec.write_fraction <= 1.0);

  Rng master(spec.seed);
  const ZipfSampler zipf(spec.n_vars, spec.zipf_s);

  std::vector<Script> scripts(spec.n_procs);
  for (ProcessId p = 0; p < spec.n_procs; ++p) {
    Rng rng = master.split();
    Script& script = scripts[p];
    script.reserve(spec.ops_per_proc);

    // Shard bounds for kPartitioned (contiguous, evenly split).
    const std::size_t shard_lo = p * spec.n_vars / spec.n_procs;
    const std::size_t shard_hi = (p + 1) * spec.n_vars / spec.n_procs;
    const std::size_t shard_size = std::max<std::size_t>(1, shard_hi - shard_lo);

    SeqNo writes = 0;
    for (std::size_t i = 0; i < spec.ops_per_proc; ++i) {
      const bool is_write = rng.chance(spec.write_fraction);

      VarId var = 0;
      switch (spec.pattern) {
        case AccessPattern::kUniform:
          var = static_cast<VarId>(rng.below(spec.n_vars));
          break;
        case AccessPattern::kZipf:
          var = static_cast<VarId>(zipf.sample(rng));
          break;
        case AccessPattern::kPartitioned:
          if (is_write && !rng.chance(spec.remote_write_fraction)) {
            var = static_cast<VarId>(shard_lo + rng.below(shard_size));
          } else {
            var = static_cast<VarId>(rng.below(spec.n_vars));
          }
          break;
        case AccessPattern::kHotspot:
          var = rng.chance(spec.hotspot_fraction)
                    ? 0
                    : static_cast<VarId>(rng.below(spec.n_vars));
          break;
      }

      const auto gap = static_cast<SimTime>(
          rng.exponential(static_cast<double>(spec.mean_gap)));

      if (is_write) {
        ++writes;
        // Globally unique, trace-friendly value: issuer * 10^6 + seq.
        const Value v = static_cast<Value>(p) * 1'000'000 +
                        static_cast<Value>(writes);
        script.push_back(write_step(gap, var, v));
      } else {
        script.push_back(read_step(gap, var));
      }
    }
  }
  return scripts;
}

std::vector<Script> generate_replica_workload(const WorkloadSpec& spec,
                                              const ReplicationMap& map) {
  DSM_REQUIRE(map.n_procs() == spec.n_procs);
  DSM_REQUIRE(map.n_vars() == spec.n_vars);

  Rng master(spec.seed);
  std::vector<Script> scripts(spec.n_procs);
  for (ProcessId p = 0; p < spec.n_procs; ++p) {
    Rng rng = master.split();
    const auto shard = map.vars_of(p);
    DSM_REQUIRE(!shard.empty() &&
                "every process must replicate at least one variable");
    Script& script = scripts[p];
    script.reserve(spec.ops_per_proc);
    SeqNo writes = 0;
    for (std::size_t i = 0; i < spec.ops_per_proc; ++i) {
      const VarId var = shard[rng.below(shard.size())];
      const auto gap = static_cast<SimTime>(
          rng.exponential(static_cast<double>(spec.mean_gap)));
      if (rng.chance(spec.write_fraction)) {
        ++writes;
        const Value v = static_cast<Value>(p) * 1'000'000 +
                        static_cast<Value>(writes);
        script.push_back(write_step(gap, var, v));
      } else {
        script.push_back(read_step(gap, var));
      }
    }
  }
  return scripts;
}

std::vector<Script> generate_subscriber_workload(const WorkloadSpec& spec,
                                                 const SubscriptionMap& map) {
  DSM_REQUIRE(map.n_procs() == spec.n_procs);
  DSM_REQUIRE(map.n_vars() == spec.n_vars);

  Rng master(spec.seed);
  std::vector<Script> scripts(spec.n_procs);
  for (ProcessId p = 0; p < spec.n_procs; ++p) {
    Rng rng = master.split();
    const auto shard = map.vars_of(p);
    DSM_REQUIRE(!shard.empty() &&
                "every process must subscribe to at least one variable");
    // Zipf over the process's subscribed set: rank k in the set gets the
    // k-th Zipf weight, so the globally-lowest subscribed variable is the
    // hot key of each shard.
    const ZipfSampler zipf(shard.size(), spec.zipf_s);
    Script& script = scripts[p];
    script.reserve(spec.ops_per_proc);
    SeqNo writes = 0;
    for (std::size_t i = 0; i < spec.ops_per_proc; ++i) {
      const VarId var = spec.pattern == AccessPattern::kZipf
                            ? shard[zipf.sample(rng)]
                            : shard[rng.below(shard.size())];
      const auto gap = static_cast<SimTime>(
          rng.exponential(static_cast<double>(spec.mean_gap)));
      if (rng.chance(spec.write_fraction)) {
        ++writes;
        const Value v = static_cast<Value>(p) * 1'000'000 +
                        static_cast<Value>(writes);
        script.push_back(write_step(gap, var, v));
      } else {
        script.push_back(read_step(gap, var));
      }
    }
  }
  return scripts;
}

namespace {

enum class MixCategory : std::uint8_t { kRead, kWrite, kCond, kAnti };

MixCategory draw_category(const ObjectMix& mix, Rng& rng) {
  const std::uint64_t total = std::uint64_t{mix.reads} + mix.writes +
                              mix.cond + mix.anti;
  std::uint64_t roll = rng.below(total);
  if (roll < mix.reads) return MixCategory::kRead;
  roll -= mix.reads;
  if (roll < mix.writes) return MixCategory::kWrite;
  roll -= mix.writes;
  if (roll < mix.cond) return MixCategory::kCond;
  return MixCategory::kAnti;
}

bool parse_mix_weight(std::string_view token, std::uint32_t* out) {
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

}  // namespace

std::optional<ObjectMix> ObjectMix::parse(std::string_view text,
                                          std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<ObjectMix> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  ObjectMix mix;
  std::uint32_t* const slots[] = {&mix.reads, &mix.writes, &mix.cond,
                                  &mix.anti};
  std::size_t field = 0;
  std::size_t pos = 0;
  while (true) {
    const std::size_t colon = text.find(':', pos);
    const std::string_view token =
        text.substr(pos, colon == std::string_view::npos ? colon : colon - pos);
    if (field >= 4) return fail("mix \"" + std::string(text) +
                                "\" has more than four R:W:C:A fields");
    if (!parse_mix_weight(token, slots[field])) {
      return fail("mix \"" + std::string(text) + "\" field " +
                  std::to_string(field + 1) + " is not a non-negative integer");
    }
    ++field;
    if (colon == std::string_view::npos) break;
    pos = colon + 1;
  }
  if (field != 4) return fail("mix \"" + std::string(text) +
                              "\" needs exactly four R:W:C:A fields");
  if (mix.reads + mix.writes + mix.cond + mix.anti == 0) {
    return fail("mix \"" + std::string(text) + "\" has zero total weight");
  }
  return mix;
}

std::string ObjectMix::str() const {
  return std::to_string(reads) + ":" + std::to_string(writes) + ":" +
         std::to_string(cond) + ":" + std::to_string(anti);
}

std::vector<Script> generate_mixed_object_workload(const WorkloadSpec& spec,
                                                   const ObjectSchema& schema,
                                                   const ObjectMix& mix) {
  DSM_REQUIRE(spec.n_procs >= 1);
  DSM_REQUIRE(spec.n_vars >= 1);
  DSM_REQUIRE(mix.reads + mix.writes + mix.cond + mix.anti > 0);

  // Small operand domain: CAS expectations, set membership and counter
  // deltas must actually collide across processes to exercise the specs.
  constexpr Value kDomain = 10;

  Rng master(spec.seed);
  const ZipfSampler zipf(spec.n_vars, spec.zipf_s);

  std::vector<Script> scripts(spec.n_procs);
  for (ProcessId p = 0; p < spec.n_procs; ++p) {
    Rng rng = master.split();
    Script& script = scripts[p];
    script.reserve(spec.ops_per_proc);
    SeqNo writes = 0;
    for (std::size_t i = 0; i < spec.ops_per_proc; ++i) {
      const auto var = static_cast<VarId>(zipf.sample(rng));
      const SpecId sid = schema.spec_for(var);
      const MixCategory cat = draw_category(mix, rng);
      const auto gap = static_cast<SimTime>(
          rng.exponential(static_cast<double>(spec.mean_gap)));
      const auto small = [&] {
        return static_cast<Value>(rng.below(kDomain));
      };
      const auto unique_value = [&] {
        ++writes;
        return static_cast<Value>(p) * 1'000'000 + static_cast<Value>(writes);
      };

      switch (sid) {
        case SpecId::kRegister:
          if (cat == MixCategory::kRead) {
            script.push_back(read_step(gap, var));
          } else {
            script.push_back(write_step(gap, var, unique_value()));
          }
          break;
        case SpecId::kCounter:
          switch (cat) {
            case MixCategory::kRead:
              script.push_back(observe_step(gap, var, sid, OpCode::kGet));
              break;
            case MixCategory::kAnti:
              script.push_back(
                  mutate_step(gap, var, sid, OpCode::kDec, 1 + small()));
              break;
            default:
              script.push_back(
                  mutate_step(gap, var, sid, OpCode::kInc, 1 + small()));
              break;
          }
          break;
        case SpecId::kCasRegister:
          switch (cat) {
            case MixCategory::kRead:
              script.push_back(observe_step(gap, var, sid, OpCode::kRead));
              break;
            case MixCategory::kCond:
              script.push_back(
                  mutate_step(gap, var, sid, OpCode::kCas, small(), small()));
              break;
            default:
              script.push_back(
                  mutate_step(gap, var, sid, OpCode::kWrite, small()));
              break;
          }
          break;
        case SpecId::kLog:
          if (cat == MixCategory::kRead) {
            script.push_back(observe_step(gap, var, sid, OpCode::kScan));
          } else {
            script.push_back(
                mutate_step(gap, var, sid, OpCode::kAppend, unique_value()));
          }
          break;
        case SpecId::kSet:
          switch (cat) {
            case MixCategory::kRead:
              script.push_back(
                  observe_step(gap, var, sid, OpCode::kContains, small()));
              break;
            case MixCategory::kAnti:
              script.push_back(
                  mutate_step(gap, var, sid, OpCode::kRemove, small()));
              break;
            default:
              script.push_back(
                  mutate_step(gap, var, sid, OpCode::kAdd, small()));
              break;
          }
          break;
      }
    }
  }
  return scripts;
}

}  // namespace dsm
