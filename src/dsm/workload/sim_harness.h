// optcm — the simulation harness: one protocol cluster, one workload, one
// deterministic run.
//
// Wires n protocol instances to the simulated network, executes the
// per-process scripts as chained events, lets the system settle, and returns
// the recorded run (history + event log + per-process stats).  Everything —
// operation interleaving, message latencies, tie-breaking — is a pure
// function of the config, so runs are exactly reproducible and two protocol
// kinds can be compared on identical message-arrival patterns (see
// latency.h on per-pair-indexed draws).
//
// Fault modes (docs/FAULTS.md), in increasing order of hostility:
//   * reliable network (default) — exactly the paper's Section 3.1 channels;
//   * faulty datagrams (config.fault) — drops/duplicates/partitions, with the
//     ARQ layer (dsm/sim/reliable.h) interposed to rebuild exactly-once;
//   * crash/restart (config.crash) — processes lose their volatile state and
//     in-flight traffic, reload their last synchronous checkpoint on restart,
//     and anti-entropy catch-up (dsm/protocols/recovery.h) repairs the gap.
//     Crash mode always stacks Network → ReliableNode → RecoveryNode →
//     protocol, because a crashed receiver drops traffic even on an
//     otherwise perfect network.

#pragma once

#include <memory>
#include <vector>

#include "dsm/objects/object_store.h"
#include "dsm/protocols/recovery.h"
#include "dsm/protocols/registry.h"
#include "dsm/protocols/run_recorder.h"
#include "dsm/sim/network.h"
#include "dsm/sim/reliable.h"
#include "dsm/workload/script.h"

namespace dsm {

class RunTelemetry;

struct SimRunConfig {
  ProtocolKind kind = ProtocolKind::kOptP;
  std::size_t n_procs = 3;
  std::size_t n_vars = 2;
  const LatencyModel* latency = nullptr;  ///< required; not owned
  Network::LatencyOverride latency_override;  ///< optional choreography hook
  ProtocolConfig protocol_config;
  /// Faulty-datagram mode: when active, the harness interposes the ARQ layer
  /// (dsm/sim/reliable.h) between protocols and the lossy network, restoring
  /// the paper's exactly-once channel assumption end to end.
  FaultPlan fault;
  /// Crash/restart mode: processes in the plan crash (volatile state and
  /// in-flight traffic lost) and later restart from their checkpoint.
  /// Requires a class-𝒫 buffering protocol (token-ws is rejected: a crashed
  /// token holder would need an election, which is out of scope).
  CrashPlan crash;
  ReliableConfig arq;  ///< ARQ tuning (initial/min/max RTO, retries, jitter)
  /// After the scripts finish, keep simulating in chunks of `settle_chunk`
  /// until every protocol is quiescent, at most `max_settle_chunks` times
  /// (the token protocol's circulation keeps the queue non-empty forever, so
  /// "queue drained" is not a usable stop condition for it).
  SimTime settle_chunk = sim_ms(50);
  std::size_t max_settle_chunks = 10'000;
  /// Optional instrumentation (dsm/telemetry/telemetry.h): when set, the run
  /// feeds the metrics registry and trace buffer — protocol events through an
  /// observer tee, buffer depth/deficit through protocol hooks, transport
  /// stats folded at the end.  Must outlive the run_sim call.  When null
  /// (default) the run is byte-identical to an uninstrumented one and pays
  /// only null-pointer checks.
  RunTelemetry* telemetry = nullptr;
};

/// One crash/restart episode as observed by the harness.  `recovered` means
/// the process caught up — every write issued anywhere before the restart
/// was received AND its pending buffer drained — before the run ended; the
/// gap `recovered_at - restarted_at` is the recovery time benches report.
struct RecoveryRecord {
  ProcessId proc = 0;
  SimTime crashed_at = 0;
  SimTime restarted_at = 0;
  SimTime recovered_at = 0;
  bool recovered = false;
};

struct SimRunResult {
  std::unique_ptr<RunRecorder> recorder;   ///< history + ordered event log
  /// Typed-object state (set iff config.protocol_config.objects was): the
  /// store that answered the run's Observe steps; replica_digest() across
  /// processes witnesses typed-state convergence.
  std::unique_ptr<ObjectStore> objects;
  std::vector<ProtocolStats> stats;        ///< per process (summed across
                                           ///< incarnations in crash mode)
  NetworkStats net;
  FaultStats faults;                       ///< drops/dups injected (if any)
  ReliableStats reliable;                  ///< ARQ totals (if fault mode)
  RecoveryStats recovery;                  ///< catch-up totals (crash mode)
  std::vector<RecoveryRecord> recoveries;  ///< one per crash event
  /// Observer events suppressed as replays (crash mode: a write redelivered
  /// through catch-up + retransmission is recorded once).
  std::uint64_t replay_suppressed = 0;
  SimTime end_time = 0;
  bool settled = false;  ///< all protocols quiescent before the chunk cap

  [[nodiscard]] std::uint64_t total_delayed() const;
  [[nodiscard]] std::uint64_t total_applies() const;
  [[nodiscard]] std::uint64_t total_skipped() const;
  [[nodiscard]] std::uint64_t peak_pending() const;
};

/// Runs `scripts[p]` on process p (scripts.size() == config.n_procs).
[[nodiscard]] SimRunResult run_sim(const SimRunConfig& config,
                                   const std::vector<Script>& scripts);

}  // namespace dsm
