// optcm — the simulation harness: one protocol cluster, one workload, one
// deterministic run.
//
// Wires n protocol instances to the simulated network, executes the
// per-process scripts as chained events, lets the system settle, and returns
// the recorded run (history + event log + per-process stats).  Everything —
// operation interleaving, message latencies, tie-breaking — is a pure
// function of the config, so runs are exactly reproducible and two protocol
// kinds can be compared on identical message-arrival patterns (see
// latency.h on per-pair-indexed draws).

#pragma once

#include <memory>
#include <vector>

#include "dsm/protocols/registry.h"
#include "dsm/protocols/run_recorder.h"
#include "dsm/sim/network.h"
#include "dsm/sim/reliable.h"
#include "dsm/workload/script.h"

namespace dsm {

struct SimRunConfig {
  ProtocolKind kind = ProtocolKind::kOptP;
  std::size_t n_procs = 3;
  std::size_t n_vars = 2;
  const LatencyModel* latency = nullptr;  ///< required; not owned
  Network::LatencyOverride latency_override;  ///< optional choreography hook
  ProtocolConfig protocol_config;
  /// Faulty-datagram mode: when active, the harness interposes the ARQ layer
  /// (dsm/sim/reliable.h) between protocols and the lossy network, restoring
  /// the paper's exactly-once channel assumption end to end.
  FaultPlan fault;
  SimTime rto = sim_ms(2);  ///< retransmission timeout of the ARQ layer
  /// After the scripts finish, keep simulating in chunks of `settle_chunk`
  /// until every protocol is quiescent, at most `max_settle_chunks` times
  /// (the token protocol's circulation keeps the queue non-empty forever, so
  /// "queue drained" is not a usable stop condition for it).
  SimTime settle_chunk = sim_ms(50);
  std::size_t max_settle_chunks = 10'000;
};

struct SimRunResult {
  std::unique_ptr<RunRecorder> recorder;   ///< history + ordered event log
  std::vector<ProtocolStats> stats;        ///< per process
  NetworkStats net;
  FaultStats faults;                       ///< drops/dups injected (if any)
  ReliableStats reliable;                  ///< ARQ totals (if fault mode)
  SimTime end_time = 0;
  bool settled = false;  ///< all protocols quiescent before the chunk cap

  [[nodiscard]] std::uint64_t total_delayed() const;
  [[nodiscard]] std::uint64_t total_applies() const;
  [[nodiscard]] std::uint64_t total_skipped() const;
  [[nodiscard]] std::uint64_t peak_pending() const;
};

/// Runs `scripts[p]` on process p (scripts.size() == config.n_procs).
[[nodiscard]] SimRunResult run_sim(const SimRunConfig& config,
                                   const std::vector<Script>& scripts);

}  // namespace dsm
