#include "dsm/workload/paper_examples.h"

#include "dsm/codec/message.h"

namespace dsm {
namespace paper {
namespace {

/// Shared script timing for all Ĥ₁ runs: generous gaps so the reactive reads
/// land where the example requires under every choreography below.
///   p1: w(x1)a at t=0;   w(x1)c at t=20.
///   p2: poll x1 (every 2µs) until it returns a, read, wait 40µs, w(x2)b —
///       the read happens around t≈6 (before c reaches p2 at t≈25) and the
///       write around t≈46 (after c was applied at p2, so send(c) → send(b)).
///   p3: poll x2 until b, read, wait 10µs, w(x2)d.
std::vector<Script> h1_scripts() {
  Script p1;
  p1.push_back(write_step(0, kX1, kA));
  p1.push_back(write_step(20, kX1, kC));

  Script p2;
  p2.push_back(read_until_step(0, kX1, kA, sim_us(2)));
  p2.push_back(write_step(40, kX2, kB));

  Script p3;
  p3.push_back(read_until_step(0, kX2, kB, sim_us(2)));
  p3.push_back(write_step(10, kX2, kD));

  return {p1, p2, p3};
}

/// Builds a latency override that keys on (written value, destination).
/// Unmatched messages (e.g. d's fan-out) fall back to `other`.
Network::LatencyOverride value_keyed_override(
    std::vector<std::tuple<Value, ProcessId, SimTime>> rules, SimTime other) {
  return [rules = std::move(rules), other](
             ProcessId /*from*/, ProcessId to,
             std::span<const std::uint8_t> bytes) -> std::optional<SimTime> {
    const auto decoded = decode_message(bytes);
    if (!decoded) return std::nullopt;
    const auto* wu = std::get_if<WriteUpdate>(&*decoded);
    if (wu == nullptr) return std::nullopt;
    for (const auto& [value, dest, delay] : rules) {
      if (wu->value == value && dest == to) return delay;
    }
    return other;
  };
}

}  // namespace

GlobalHistory make_h1_history() {
  GlobalHistory h(kH1Procs, kH1Vars);
  const WriteId wa = h.add_write(0, kX1, kA);   // w1(x1)a
  const WriteId wc = h.add_write(0, kX1, kC);   // w1(x1)c
  (void)wc;
  h.add_read(1, kX1, kA, wa);                   // r2(x1)a
  const WriteId wb = h.add_write(1, kX2, kB);   // w2(x2)b
  h.add_read(2, kX2, kB, wb);                   // r3(x2)b
  h.add_write(2, kX2, kD);                      // w3(x2)d
  return h;
}

std::vector<Script> make_h1_scripts() { return h1_scripts(); }

Choreography make_fig1_run1() {
  // p3 receives a (t≈10), c (t≈35), then b (t≈106): everything applies on
  // arrival — the run with no write delay.
  Choreography c;
  c.scripts = h1_scripts();
  c.latency_override = value_keyed_override(
      {
          {kA, 2, sim_us(10)},   // w1(x1)a -> p3: fast
          {kC, 2, sim_us(15)},   // w1(x1)c -> p3: arrives ≈35, after a
          {kB, 2, sim_us(60)},   // w2(x2)b -> p3: arrives ≈106, last
          {kA, 1, sim_us(5)},    // a -> p2: enables the read
          {kC, 1, sim_us(5)},    // c -> p2 at ≈25, before b is written
      },
      sim_us(10));
  return c;
}

Choreography make_fig1_run2() {
  // p3 receives b (t≈56) BEFORE a (t≈100): b must wait for a — a necessary
  // delay under any safe protocol (a ↦co b).  c arrives later still (≈170).
  Choreography c;
  c.scripts = h1_scripts();
  c.latency_override = value_keyed_override(
      {
          {kA, 2, sim_us(100)},
          {kC, 2, sim_us(150)},
          {kB, 2, sim_us(10)},
          {kA, 1, sim_us(5)},
          {kC, 1, sim_us(5)},
      },
      sim_us(10));
  return c;
}

Choreography make_fig3() {
  // p3 receives a (t≈30), then b (t≈56) while c is still in flight (t≈1020).
  // OptP applies b on arrival (a, its only ↦co dependency, is in).  ANBKH
  // buffers b until c arrives, although w2(x2)b ‖co w1(x1)c — the
  // false-causality run of Figure 3 / footnote 7.
  Choreography c;
  c.scripts = h1_scripts();
  c.latency_override = value_keyed_override(
      {
          {kA, 2, sim_us(30)},
          {kC, 2, sim_us(1000)},
          {kB, 2, sim_us(10)},
          {kA, 1, sim_us(5)},
          {kC, 1, sim_us(5)},
      },
      sim_us(10));
  return c;
}

}  // namespace paper
}  // namespace dsm
