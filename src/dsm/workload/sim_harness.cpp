#include "dsm/workload/sim_harness.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "dsm/common/contracts.h"
#include "dsm/sim/event_queue.h"
#include "dsm/telemetry/telemetry.h"
#include "dsm/workload/script_runner.h"

namespace dsm {
namespace {

/// Endpoint implementation over the simulated network — either directly
/// (reliable-network mode) or through the per-process ARQ node (fault mode).
class SimEndpoint final : public Endpoint {
 public:
  SimEndpoint(Network& net, ProcessId self) : net_(&net), self_(self) {}
  SimEndpoint(ReliableNode& node, ProcessId self)
      : reliable_(&node), self_(self) {}

  void broadcast(Payload bytes) override {
    if (reliable_ != nullptr) {
      reliable_->broadcast(bytes);
    } else {
      net_->broadcast(self_, bytes);
    }
  }
  void send(ProcessId to, Payload bytes) override {
    if (reliable_ != nullptr) {
      reliable_->send(to, std::move(bytes));
    } else {
      net_->send(self_, to, std::move(bytes));
    }
  }

 private:
  Network* net_ = nullptr;
  ReliableNode* reliable_ = nullptr;
  ProcessId self_;
};

/// MessageSink adapter: network delivery -> protocol receive.  Constructible
/// before the protocol exists (the ARQ wiring is circular otherwise).
class ProtocolSink final : public MessageSink {
 public:
  ProtocolSink() = default;
  explicit ProtocolSink(CausalProtocol& proto) : proto_(&proto) {}
  void set_protocol(CausalProtocol& proto) { proto_ = &proto; }
  void deliver(ProcessId from, std::span<const std::uint8_t> bytes) override {
    DSM_REQUIRE(proto_ != nullptr);
    proto_->on_message(from, bytes);
  }

 private:
  CausalProtocol* proto_ = nullptr;
};

/// Late-bound sink with a stable address: the ARQ node (constructed first,
/// registers with the network) delivers upward through this, and the target
/// behind it — the recovery node — is destroyed and rebuilt on every
/// crash/restart cycle.
class LateSink final : public MessageSink {
 public:
  void set(MessageSink* sink) noexcept { sink_ = sink; }
  void deliver(ProcessId from, std::span<const std::uint8_t> bytes) override {
    DSM_REQUIRE(sink_ != nullptr);
    sink_->deliver(from, bytes);
  }

 private:
  MessageSink* sink_ = nullptr;
};

/// One rebuildable process: everything here dies on crash and is
/// reconstructed (then restored from the checkpoint) on restart.
struct ProcNode {
  std::unique_ptr<ReliableNode> arq;
  std::unique_ptr<SimEndpoint> lower;  ///< recovery node's path downward
  std::unique_ptr<RecoveryNode> recovery;
  std::unique_ptr<CausalProtocol> proto;
  BufferingProtocol* buffering = nullptr;
  bool up = true;
};

/// Crash/restart mode: full stack Network → ARQ → RecoveryNode → protocol,
/// synchronous checkpoints after every state-mutating event, anti-entropy
/// catch-up on restart.  Kept separate from the plain path so the latter
/// stays byte-for-byte identical to pre-crash-support runs.
SimRunResult run_sim_crash(const SimRunConfig& config,
                           const std::vector<Script>& scripts) {
  config.crash.validate(config.n_procs);
  // Typed objects are not supported with crash/restart: a restarted process's
  // catch-up applies arrive without their typed payload stash, so the store
  // could not replay them.  The CLI rejects the combination up front.
  DSM_REQUIRE(config.protocol_config.objects == nullptr);

  EventQueue queue;
  Network net(queue, *config.latency, config.n_procs);
  if (config.latency_override) {
    net.set_latency_override(config.latency_override);
  }
  net.set_fault_plan(config.fault);

  auto recorder = std::make_unique<RunRecorder>(
      config.n_procs, config.n_vars, [&queue] { return queue.now(); });
  RunTelemetry* const tel = config.telemetry;
  if (tel != nullptr) tel->set_clock([&queue] { return queue.now(); });
  ProtocolObserver* downstream = recorder.get();
  if (tel != nullptr) downstream = &tel->observe_through(*recorder);
  // A write can legitimately reach a process twice (catch-up reply + ARQ
  // retransmission whose ACK died with the crash); record each event once.
  // The filter sits outermost so telemetry also sees the deduplicated stream
  // (replayed applies would otherwise double-count).
  ReplayFilterObserver filter(*downstream);

  SimRunResult result;
  std::vector<LateSink> sinks(config.n_procs);
  std::vector<ProcNode> nodes(config.n_procs);
  std::vector<std::vector<std::uint8_t>> checkpoints(config.n_procs);
  std::vector<ProtocolStats> proto_acc(config.n_procs);
  std::vector<std::uint64_t> issued(config.n_procs, 0);

  const auto checkpoint = [&](ProcessId p) {
    ProcNode& node = nodes[p];
    DSM_REQUIRE(node.proto != nullptr);
    ByteWriter w;
    node.proto->snapshot(w);
    node.recovery->snapshot(w);
    node.arq->snapshot(w);
    checkpoints[p] = std::move(w).take();
    if (tel != nullptr) tel->record_checkpoint(p, checkpoints[p].size());
  };

  const auto build = [&](ProcessId p) {
    ProcNode& node = nodes[p];
    node.arq =
        std::make_unique<ReliableNode>(queue, net, p, sinks[p], config.arq);
    node.lower = std::make_unique<SimEndpoint>(*node.arq, p);
    node.recovery =
        std::make_unique<RecoveryNode>(p, config.n_procs, *node.lower);
    sinks[p].set(node.recovery.get());
    node.proto =
        make_protocol(config.kind, p, config.n_procs, config.n_vars,
                      *node.recovery, filter, config.protocol_config);
    node.buffering = dynamic_cast<BufferingProtocol*>(node.proto.get());
    DSM_REQUIRE(node.buffering != nullptr &&
                "crash plans need a class-P buffering protocol; a crashed "
                "token holder would require an election (out of scope)");
    node.recovery->set_protocol(*node.buffering);
    node.recovery->set_checkpoint_hook([&checkpoint, p] { checkpoint(p); });
    if (tel != nullptr)
      node.proto->set_instrumentation(&tel->instrumentation(p));
    node.up = true;
  };

  for (ProcessId p = 0; p < config.n_procs; ++p) build(p);
  for (auto& node : nodes) node.proto->start();
  // Time-zero baseline: a process that crashes before its first operation
  // still restores to a well-formed (empty) state.
  for (ProcessId p = 0; p < config.n_procs; ++p) checkpoint(p);

  std::vector<ScriptRunner> runners;
  runners.reserve(config.n_procs);
  for (ProcessId p = 0; p < config.n_procs; ++p) {
    runners.emplace_back(
        queue, *recorder, [&nodes, p] { return nodes[p].proto.get(); }, p,
        scripts[p], [&checkpoint, p] { checkpoint(p); }, &issued);
    runners.back().set_telemetry(tel);
  }
  for (auto& r : runners) r.begin();

  // Recovery-completion detector: a restarted process has recovered once its
  // received watermarks cover every write issued anywhere before its restart
  // AND its pending buffer drained (received ⇒ applied or logically applied).
  std::function<void(ProcessId, std::size_t, std::vector<std::uint64_t>)> poll =
      [&](ProcessId p, std::size_t idx, std::vector<std::uint64_t> target) {
        ProcNode& node = nodes[p];
        if (node.up) {
          const VectorClock seen = node.recovery->seen();
          bool caught_up = node.proto->quiescent();
          for (ProcessId u = 0; u < config.n_procs && caught_up; ++u) {
            if (seen[u] < target[u]) caught_up = false;
          }
          if (caught_up) {
            result.recoveries[idx].recovered = true;
            result.recoveries[idx].recovered_at = queue.now();
            return;
          }
        }
        queue.schedule_after(
            sim_ms(1),
            [&poll, p, idx, t = std::move(target)] { poll(p, idx, t); });
      };

  for (const CrashEvent& e : config.crash.events) {
    queue.schedule_at(e.at, [&, e] {
      ProcNode& node = nodes[e.p];
      DSM_REQUIRE(node.up);
      // The dying incarnation's counters survive in the accumulators (stats
      // are volatile by design — they are not part of the checkpoint).
      proto_acc[e.p] += node.proto->stats();
      result.reliable += node.arq->stats();
      result.recovery += node.recovery->stats();
      if (tel != nullptr) {
        tel->record_crash(e.p);
        tel->fold_reliable(e.p, node.arq->stats());
        tel->fold_recovery(e.p, node.recovery->stats());
      }
      net.detach(e.p);
      runners[e.p].suspend();
      sinks[e.p].set(nullptr);
      node.proto.reset();
      node.buffering = nullptr;
      node.recovery.reset();
      node.arq.reset();
      node.up = false;
    });
    queue.schedule_at(e.restart_at, [&, e] {
      if (tel != nullptr) tel->record_restart(e.p);
      build(e.p);
      ProcNode& node = nodes[e.p];
      ByteReader r(checkpoints[e.p]);
      DSM_REQUIRE(node.proto->restore(r));
      DSM_REQUIRE(node.recovery->restore(r));
      DSM_REQUIRE(node.arq->restore(r));  // also retransmits everything unacked
      DSM_REQUIRE(r.exhausted());
      node.recovery->request_catch_up();
      checkpoint(e.p);
      runners[e.p].resume();
      const std::size_t idx = result.recoveries.size();
      result.recoveries.push_back(
          RecoveryRecord{e.p, e.at, e.restart_at, 0, false});
      poll(e.p, idx, issued);
    });
  }

  const auto all_done = [&] {
    return std::all_of(runners.begin(), runners.end(),
                       [](const ScriptRunner& r) { return r.done(); });
  };
  const auto all_quiescent = [&] {
    return std::all_of(nodes.begin(), nodes.end(), [](const ProcNode& n) {
      return n.up && n.proto->quiescent() && n.arq->quiescent();
    });
  };

  std::size_t chunks = 0;
  while (true) {
    const std::size_t fired = queue.run_until(queue.now() + config.settle_chunk);
    if (queue.empty()) {
      result.settled = all_done() && all_quiescent();
      break;
    }
    if (all_done() && all_quiescent()) {
      result.settled = true;
      break;
    }
    if (fired == 0) queue.step();
    if (++chunks >= config.max_settle_chunks) {
      result.settled = false;
      break;
    }
  }

  result.end_time = queue.now();
  result.net = net.stats();
  result.faults = net.fault_stats();
  result.replay_suppressed = filter.suppressed();
  result.stats.reserve(config.n_procs);
  for (ProcessId p = 0; p < config.n_procs; ++p) {
    ProcNode& node = nodes[p];
    if (node.proto != nullptr) {
      proto_acc[p] += node.proto->stats();
      result.reliable += node.arq->stats();
      result.recovery += node.recovery->stats();
      if (tel != nullptr) {
        tel->fold_reliable(p, node.arq->stats());
        tel->fold_recovery(p, node.recovery->stats());
        for (ProcessId to = 0; to < config.n_procs; ++to) {
          if (to != p) tel->sample_rto(p, node.arq->current_rto(to));
        }
      }
    }
    result.stats.push_back(proto_acc[p]);
  }
  if (tel != nullptr) {
    tel->fold_network(result.net, result.faults);
    tel->set_clock({});  // the queue dies with this frame
  }
  result.recorder = std::move(recorder);
  return result;
}

}  // namespace

std::uint64_t SimRunResult::total_delayed() const {
  std::uint64_t s = 0;
  for (const auto& st : stats) s += st.delayed_writes;
  return s;
}
std::uint64_t SimRunResult::total_applies() const {
  std::uint64_t s = 0;
  for (const auto& st : stats) s += st.remote_applies;
  return s;
}
std::uint64_t SimRunResult::total_skipped() const {
  std::uint64_t s = 0;
  for (const auto& st : stats) s += st.skipped_writes;
  return s;
}
std::uint64_t SimRunResult::peak_pending() const {
  std::uint64_t s = 0;
  for (const auto& st : stats) s = std::max(s, st.peak_pending);
  return s;
}

SimRunResult run_sim(const SimRunConfig& config,
                     const std::vector<Script>& scripts) {
  DSM_REQUIRE(config.latency != nullptr);
  DSM_REQUIRE(scripts.size() == config.n_procs);

  if (config.crash.active()) return run_sim_crash(config, scripts);

  EventQueue queue;
  Network net(queue, *config.latency, config.n_procs);
  if (config.latency_override) {
    net.set_latency_override(config.latency_override);
  }

  auto recorder = std::make_unique<RunRecorder>(
      config.n_procs, config.n_vars, [&queue] { return queue.now(); });

  // Telemetry (optional): protocol events tee through the RunTelemetry
  // observer into the recorder, stamped with simulated time.
  RunTelemetry* const tel = config.telemetry;
  ProtocolObserver* observer = recorder.get();
  if (tel != nullptr) {
    tel->set_clock([&queue] { return queue.now(); });
    observer = &tel->observe_through(*recorder);
  }

  // Typed-object runs interpose the ObjectStore outermost: it stashes each
  // mutation's typed payload at send/receipt and replays it on apply, before
  // forwarding every event unchanged to telemetry/recorder.
  std::unique_ptr<ObjectStore> objects;
  if (config.protocol_config.objects != nullptr) {
    objects = std::make_unique<ObjectStore>(config.protocol_config.objects,
                                            config.n_procs, config.n_vars,
                                            *observer);
    observer = objects.get();
  }

  // Wiring order matters in fault mode: the ARQ node registers itself as the
  // network sink and needs the (not-yet-filled) protocol sink as its upper
  // layer; the endpoint then routes protocol sends through the ARQ node.
  std::vector<ProtocolSink> sinks(config.n_procs);
  std::vector<std::unique_ptr<ReliableNode>> arq;
  std::vector<SimEndpoint> endpoints;
  endpoints.reserve(config.n_procs);
  if (config.fault.active()) {
    net.set_fault_plan(config.fault);
    arq.reserve(config.n_procs);
    for (ProcessId p = 0; p < config.n_procs; ++p) {
      arq.push_back(
          std::make_unique<ReliableNode>(queue, net, p, sinks[p], config.arq));
      endpoints.emplace_back(*arq[p], p);
    }
  } else {
    for (ProcessId p = 0; p < config.n_procs; ++p) {
      net.attach(p, sinks[p]);
      endpoints.emplace_back(net, p);
    }
  }

  std::vector<std::unique_ptr<CausalProtocol>> protos;
  protos.reserve(config.n_procs);
  for (ProcessId p = 0; p < config.n_procs; ++p) {
    protos.push_back(make_protocol(config.kind, p, config.n_procs,
                                   config.n_vars, endpoints[p], *observer,
                                   config.protocol_config));
    if (tel != nullptr) protos[p]->set_instrumentation(&tel->instrumentation(p));
    sinks[p].set_protocol(*protos[p]);
  }

  for (auto& proto : protos) proto->start();

  std::vector<ScriptRunner> runners;
  runners.reserve(config.n_procs);
  for (ProcessId p = 0; p < config.n_procs; ++p) {
    runners.emplace_back(
        queue, *recorder, [&protos, p] { return protos[p].get(); }, p,
        scripts[p]);
    runners.back().set_telemetry(tel);
    runners.back().set_objects(objects.get());
  }
  for (auto& r : runners) r.begin();

  // Run to quiescence: the queue draining is sufficient; for token runs the
  // queue never drains, so poll the protocols' quiescence between chunks.
  const auto all_done = [&] {
    return std::all_of(runners.begin(), runners.end(),
                       [](const ScriptRunner& r) { return r.done(); });
  };
  const auto all_quiescent = [&] {
    return std::all_of(protos.begin(), protos.end(),
                       [](const auto& p) { return p->quiescent(); }) &&
           std::all_of(arq.begin(), arq.end(),
                       [](const auto& node) { return node->quiescent(); });
  };

  SimRunResult result;
  std::size_t chunks = 0;
  while (true) {
    const std::size_t fired = queue.run_until(queue.now() + config.settle_chunk);
    if (queue.empty()) {
      result.settled = all_done() && all_quiescent();
      break;
    }
    if (all_done() && all_quiescent()) {
      result.settled = true;
      break;
    }
    // The next event lies beyond the chunk horizon (e.g. a heavy-tail
    // latency draw): jump to it so the loop always makes progress.
    if (fired == 0) queue.step();
    if (++chunks >= config.max_settle_chunks) {
      result.settled = false;  // stuck or cap too tight; caller inspects
      break;
    }
  }

  result.end_time = queue.now();
  result.net = net.stats();
  result.faults = net.fault_stats();
  for (const auto& node : arq) result.reliable += node->stats();
  result.stats.reserve(config.n_procs);
  for (const auto& proto : protos) result.stats.push_back(proto->stats());
  if (tel != nullptr) {
    tel->fold_network(result.net, result.faults);
    for (ProcessId p = 0; p < arq.size(); ++p) {
      tel->fold_reliable(p, arq[p]->stats());
      for (ProcessId to = 0; to < config.n_procs; ++to) {
        if (to != p) tel->sample_rto(p, arq[p]->current_rto(to));
      }
    }
    tel->set_clock({});  // the queue dies with this frame
  }
  result.recorder = std::move(recorder);
  result.objects = std::move(objects);
  return result;
}

}  // namespace dsm
