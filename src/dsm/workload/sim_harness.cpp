#include "dsm/workload/sim_harness.h"

#include <algorithm>

#include "dsm/common/contracts.h"
#include "dsm/sim/event_queue.h"

namespace dsm {
namespace {

/// Endpoint implementation over the simulated network — either directly
/// (reliable-network mode) or through the per-process ARQ node (fault mode).
class SimEndpoint final : public Endpoint {
 public:
  SimEndpoint(Network& net, ProcessId self) : net_(&net), self_(self) {}
  SimEndpoint(ReliableNode& node, ProcessId self)
      : reliable_(&node), self_(self) {}

  void broadcast(std::vector<std::uint8_t> bytes) override {
    if (reliable_ != nullptr) {
      reliable_->broadcast(bytes);
    } else {
      net_->broadcast(self_, bytes);
    }
  }
  void send(ProcessId to, std::vector<std::uint8_t> bytes) override {
    if (reliable_ != nullptr) {
      reliable_->send(to, std::move(bytes));
    } else {
      net_->send(self_, to, std::move(bytes));
    }
  }

 private:
  Network* net_ = nullptr;
  ReliableNode* reliable_ = nullptr;
  ProcessId self_;
};

/// MessageSink adapter: network delivery -> protocol receive.  Constructible
/// before the protocol exists (the ARQ wiring is circular otherwise).
class ProtocolSink final : public MessageSink {
 public:
  ProtocolSink() = default;
  explicit ProtocolSink(CausalProtocol& proto) : proto_(&proto) {}
  void set_protocol(CausalProtocol& proto) { proto_ = &proto; }
  void deliver(ProcessId from, std::span<const std::uint8_t> bytes) override {
    DSM_REQUIRE(proto_ != nullptr);
    proto_->on_message(from, bytes);
  }

 private:
  CausalProtocol* proto_ = nullptr;
};

/// Per-process script executor: runs steps as a chain of queue events.
class ScriptRunner {
 public:
  ScriptRunner(EventQueue& queue, RunRecorder& recorder,
               CausalProtocol& proto, ProcessId self, const Script& script)
      : queue_(&queue),
        recorder_(&recorder),
        proto_(&proto),
        self_(self),
        script_(&script) {}

  void begin() { schedule_step(0, 0); }

  [[nodiscard]] bool done() const noexcept { return next_ >= script_->size(); }

 private:
  void schedule_step(std::size_t idx, SimTime extra_delay) {
    if (idx >= script_->size()) return;
    const ScriptStep& step = (*script_)[idx];
    queue_->schedule_after(step.delay + extra_delay,
                           [this, idx] { execute(idx); });
  }

  void execute(std::size_t idx) {
    const ScriptStep& step = (*script_)[idx];
    switch (step.kind) {
      case StepKind::kWrite: {
        recorder_->record_write(self_, step.var, step.value);
        proto_->write(step.var, step.value);
        break;
      }
      case StepKind::kRead: {
        const ReadResult r = proto_->read(step.var);
        recorder_->record_read(self_, step.var, r);
        break;
      }
      case StepKind::kReadUntil: {
        // Poll without reading; fire the one real read when the awaited
        // value is visible (or the timeout elapsed).
        if (proto_->peek(step.var).value != step.value &&
            waited_ < step.timeout) {
          waited_ += step.poll_every;
          queue_->schedule_after(step.poll_every, [this, idx] { execute(idx); });
          return;
        }
        waited_ = 0;
        const ReadResult r = proto_->read(step.var);
        recorder_->record_read(self_, step.var, r);
        break;
      }
    }
    next_ = idx + 1;
    schedule_step(next_, 0);
  }

  EventQueue* queue_;
  RunRecorder* recorder_;
  CausalProtocol* proto_;
  ProcessId self_;
  const Script* script_;
  std::size_t next_ = 0;
  SimTime waited_ = 0;
};

}  // namespace

std::uint64_t SimRunResult::total_delayed() const {
  std::uint64_t s = 0;
  for (const auto& st : stats) s += st.delayed_writes;
  return s;
}
std::uint64_t SimRunResult::total_applies() const {
  std::uint64_t s = 0;
  for (const auto& st : stats) s += st.remote_applies;
  return s;
}
std::uint64_t SimRunResult::total_skipped() const {
  std::uint64_t s = 0;
  for (const auto& st : stats) s += st.skipped_writes;
  return s;
}
std::uint64_t SimRunResult::peak_pending() const {
  std::uint64_t s = 0;
  for (const auto& st : stats) s = std::max(s, st.peak_pending);
  return s;
}

SimRunResult run_sim(const SimRunConfig& config,
                     const std::vector<Script>& scripts) {
  DSM_REQUIRE(config.latency != nullptr);
  DSM_REQUIRE(scripts.size() == config.n_procs);

  EventQueue queue;
  Network net(queue, *config.latency, config.n_procs);
  if (config.latency_override) {
    net.set_latency_override(config.latency_override);
  }

  auto recorder = std::make_unique<RunRecorder>(
      config.n_procs, config.n_vars, [&queue] { return queue.now(); });

  // Wiring order matters in fault mode: the ARQ node registers itself as the
  // network sink and needs the (not-yet-filled) protocol sink as its upper
  // layer; the endpoint then routes protocol sends through the ARQ node.
  std::vector<ProtocolSink> sinks(config.n_procs);
  std::vector<std::unique_ptr<ReliableNode>> arq;
  std::vector<SimEndpoint> endpoints;
  endpoints.reserve(config.n_procs);
  if (config.fault.active()) {
    net.set_fault_plan(config.fault);
    ReliableNode::Config arq_config;
    arq_config.rto = config.rto;
    arq.reserve(config.n_procs);
    for (ProcessId p = 0; p < config.n_procs; ++p) {
      arq.push_back(
          std::make_unique<ReliableNode>(queue, net, p, sinks[p], arq_config));
      endpoints.emplace_back(*arq[p], p);
    }
  } else {
    for (ProcessId p = 0; p < config.n_procs; ++p) {
      net.attach(p, sinks[p]);
      endpoints.emplace_back(net, p);
    }
  }

  std::vector<std::unique_ptr<CausalProtocol>> protos;
  protos.reserve(config.n_procs);
  for (ProcessId p = 0; p < config.n_procs; ++p) {
    protos.push_back(make_protocol(config.kind, p, config.n_procs,
                                   config.n_vars, endpoints[p], *recorder,
                                   config.protocol_config));
    sinks[p].set_protocol(*protos[p]);
  }

  for (auto& proto : protos) proto->start();

  std::vector<ScriptRunner> runners;
  runners.reserve(config.n_procs);
  for (ProcessId p = 0; p < config.n_procs; ++p) {
    runners.emplace_back(queue, *recorder, *protos[p], p, scripts[p]);
  }
  for (auto& r : runners) r.begin();

  // Run to quiescence: the queue draining is sufficient; for token runs the
  // queue never drains, so poll the protocols' quiescence between chunks.
  const auto all_done = [&] {
    return std::all_of(runners.begin(), runners.end(),
                       [](const ScriptRunner& r) { return r.done(); });
  };
  const auto all_quiescent = [&] {
    return std::all_of(protos.begin(), protos.end(),
                       [](const auto& p) { return p->quiescent(); }) &&
           std::all_of(arq.begin(), arq.end(),
                       [](const auto& node) { return node->quiescent(); });
  };

  SimRunResult result;
  std::size_t chunks = 0;
  while (true) {
    const std::size_t fired = queue.run_until(queue.now() + config.settle_chunk);
    if (queue.empty()) {
      result.settled = all_done() && all_quiescent();
      break;
    }
    if (all_done() && all_quiescent()) {
      result.settled = true;
      break;
    }
    // The next event lies beyond the chunk horizon (e.g. a heavy-tail
    // latency draw): jump to it so the loop always makes progress.
    if (fired == 0) queue.step();
    if (++chunks >= config.max_settle_chunks) {
      result.settled = false;  // stuck or cap too tight; caller inspects
      break;
    }
  }

  result.end_time = queue.now();
  result.net = net.stats();
  result.faults = net.fault_stats();
  for (const auto& node : arq) {
    const auto& s = node->stats();
    result.reliable.data_sent += s.data_sent;
    result.reliable.retransmissions += s.retransmissions;
    result.reliable.acks_sent += s.acks_sent;
    result.reliable.delivered += s.delivered;
    result.reliable.duplicates_suppressed += s.duplicates_suppressed;
    result.reliable.abandoned += s.abandoned;
  }
  result.stats.reserve(config.n_procs);
  for (const auto& proto : protos) result.stats.push_back(proto->stats());
  result.recorder = std::move(recorder);
  return result;
}

}  // namespace dsm
