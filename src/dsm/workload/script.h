// optcm — per-process operation scripts.
//
// A run's application-level behaviour is a Script per process: a sequence of
// steps executed in order, each after a delay relative to the completion of
// the previous step.  Three step kinds:
//
//   * Write(x, v)            — issue w(x)v.
//   * Read(x)                — issue r(x), whatever the value.
//   * ReadUntil(x, v)        — poll the local copy (without issuing reads)
//     until it holds the write carrying value v, then issue one real read.
//     This is how the paper's reactive examples are scripted: p_3 in Ĥ₁
//     reads x₂ only once it returns b — under any protocol and any latency
//     assignment, so the *same history* is produced and only the event
//     orders/delays differ (exactly what Figures 1–3 and 6 contrast).
//   * Mutate(x, op, arg, arg2) — issue a typed mutation (dsm/objects): a
//     spec-defined write such as inc/cas/append/add, replicated exactly
//     like a write.
//   * Observe(x, op, arg)    — issue a typed accessor (get/scan/contains…):
//     answered from the ObjectStore's materialized state, recorded with its
//     visible-set counts, and paired with one real protocol read so the
//     causal merge-on-read discipline is preserved.
//
// Polling uses CausalProtocol::peek, which performs no Write_co merge and
// records nothing; the semantically relevant read happens exactly once.

#pragma once

#include <string>
#include <vector>

#include "dsm/common/types.h"
#include "dsm/objects/opcodes.h"
#include "dsm/sim/sim_time.h"

namespace dsm {

enum class StepKind : std::uint8_t { kWrite, kRead, kReadUntil, kMutate,
                                     kObserve };

struct ScriptStep {
  SimTime delay = 0;  ///< gap after the previous step completed
  StepKind kind = StepKind::kWrite;
  VarId var = 0;
  Value value = 0;                 ///< Write/Mutate: primary operand;
                                   ///< ReadUntil: value awaited;
                                   ///< Observe: query operand
  SimTime poll_every = sim_us(50); ///< ReadUntil polling period
  SimTime timeout = sim_s(3600);   ///< ReadUntil: give up and read anyway
  /// Typed steps only (kMutate/kObserve): the governing spec, opcode, and
  /// the secondary operand (CAS desired value).  Raw bytes, matching the
  /// wire encoding.
  std::uint8_t spec = 0;
  std::uint8_t opcode = 0;
  Value arg2 = 0;
};

using Script = std::vector<ScriptStep>;

/// Step factories (keep bench/test scripts terse).
[[nodiscard]] ScriptStep write_step(SimTime delay, VarId x, Value v);
[[nodiscard]] ScriptStep read_step(SimTime delay, VarId x);
[[nodiscard]] ScriptStep read_until_step(SimTime delay, VarId x, Value v,
                                         SimTime poll_every = sim_us(50));
[[nodiscard]] ScriptStep mutate_step(SimTime delay, VarId x, SpecId spec,
                                     OpCode opcode, Value arg, Value arg2 = 0);
[[nodiscard]] ScriptStep observe_step(SimTime delay, VarId x, SpecId spec,
                                      OpCode opcode, Value arg = 0);

/// Total number of steps of a given kind across all scripts.
[[nodiscard]] std::size_t count_steps(const std::vector<Script>& scripts,
                                      StepKind kind);

}  // namespace dsm
