// optcm — the deterministic typed-objects demo run (--script=objects).
//
// Three processes over five variables, one per sequential spec:
//
//   x1 counter   x2 set   x3 log   x4 cas-register   x5 register (barrier)
//
//   p1: inc(x1,5); add(x2,7); app(x3,100); w(x4)3;            w(x5)1
//   p2: r(x5)=1 ⟶ get(x1)=5; has(x2,7)=1; cas(x4,3→9);
//       dec(x1,2); rem(x2,7); app(x3,200);                    w(x5)2
//   p3: r(x5)=2 ⟶ get(x1)=3; has(x2,7)=0; r(x4)=9; scan(x3)
//
// The register barrier x5 pins the causal structure exactly as Ĥ₁'s reactive
// reads do: p2 only starts once it READ the value 1 — so every mutation of
// p1 is causally before everything p2 does — and p3 only starts once it read
// 2.  Under causal consistency every accessor's visible set is therefore
// fully determined, every return value above is forced, and the run produces
// the same history under every protocol, tier, and latency assignment —
// which is what lets `optcm drive --script=objects --compare-sim` compare
// observer sequences byte-for-byte across deployments.

#pragma once

#include <memory>
#include <vector>

#include "dsm/objects/schema.h"
#include "dsm/workload/script.h"

namespace dsm {

inline constexpr std::size_t kObjectsDemoProcs = 3;
inline constexpr std::size_t kObjectsDemoVars = 5;

/// The schema above (shared so ProtocolConfig and checks can alias it).
[[nodiscard]] std::shared_ptr<const ObjectSchema> make_objects_demo_schema();

/// The three reactive scripts above.
[[nodiscard]] std::vector<Script> make_objects_demo_scripts();

/// The forced accessor returns, in per-process script order (p2's two
/// observes, then p3's four) — except the scan digest, which tests recompute
/// from the spec (it is a hash, not a scripted constant).
struct ObjectsDemoExpected {
  Value p2_get = 5;       ///< get(x1) at p2
  Value p2_has = 1;       ///< has(x2,7) at p2
  Value p3_get = 3;       ///< get(x1) at p3
  Value p3_has = 0;       ///< has(x2,7) at p3
  Value p3_cas_read = 9;  ///< r(x4) at p3
};

}  // namespace dsm
