#include "dsm/workload/script.h"

namespace dsm {

ScriptStep write_step(SimTime delay, VarId x, Value v) {
  ScriptStep s;
  s.delay = delay;
  s.kind = StepKind::kWrite;
  s.var = x;
  s.value = v;
  return s;
}

ScriptStep read_step(SimTime delay, VarId x) {
  ScriptStep s;
  s.delay = delay;
  s.kind = StepKind::kRead;
  s.var = x;
  return s;
}

ScriptStep read_until_step(SimTime delay, VarId x, Value v, SimTime poll_every) {
  ScriptStep s;
  s.delay = delay;
  s.kind = StepKind::kReadUntil;
  s.var = x;
  s.value = v;
  s.poll_every = poll_every;
  return s;
}

ScriptStep mutate_step(SimTime delay, VarId x, SpecId spec, OpCode opcode,
                       Value arg, Value arg2) {
  ScriptStep s;
  s.delay = delay;
  s.kind = StepKind::kMutate;
  s.var = x;
  s.value = arg;
  s.spec = static_cast<std::uint8_t>(spec);
  s.opcode = static_cast<std::uint8_t>(opcode);
  s.arg2 = arg2;
  return s;
}

ScriptStep observe_step(SimTime delay, VarId x, SpecId spec, OpCode opcode,
                        Value arg) {
  ScriptStep s;
  s.delay = delay;
  s.kind = StepKind::kObserve;
  s.var = x;
  s.value = arg;
  s.spec = static_cast<std::uint8_t>(spec);
  s.opcode = static_cast<std::uint8_t>(opcode);
  return s;
}

std::size_t count_steps(const std::vector<Script>& scripts, StepKind kind) {
  std::size_t n = 0;
  for (const auto& script : scripts) {
    for (const auto& step : script) {
      if (step.kind == kind) ++n;
    }
  }
  return n;
}

}  // namespace dsm
