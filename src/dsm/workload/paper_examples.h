// optcm — the paper's worked example Ĥ₁ (Example 1) and the choreographed
// runs of its figures.
//
//   Ĥ₁:   h1: w1(x1)a; w1(x1)c
//         h2: r2(x1)a; w2(x2)b
//         h3: r3(x2)b; w3(x2)d
//
// with  w1(x1)a ↦co w2(x2)b,  w1(x1)a ↦co w1(x1)c,  w2(x2)b ↦co w3(x2)d
// and   w1(x1)c ‖co w2(x2)b,  w1(x1)c ‖co w3(x2)d.
//
// Values use the letter encoding of op_to_string: a=0, b=1, c=2, d=3.
// Variables: x1 = 0, x2 = 1.
//
// `make_h1_scripts` produces Ĥ₁ reactively (p2 reads once it sees a, p3 once
// it sees b), so the *same history* arises under every protocol and latency
// assignment; the choreographies then pin message latencies to force the
// arrival orders of the paper's run figures:
//
//   * Figure 1 run (1): p3 receives a, c, then b — no write delay.
//   * Figure 1 run (2): p3 receives b before a — one NECESSARY delay
//     (w2(x2)b waits for w1(x1)a ↦co w2(x2)b).
//   * Figure 3 (= Figure 2's scenario): p3 receives a, then b, with c still
//     in flight.  OptP applies b immediately (its only ↦co dependency, a, is
//     there); ANBKH delays b until c arrives although b ‖co c — one
//     UNNECESSARY delay, the paper's false-causality example.

#pragma once

#include <vector>

#include "dsm/history/history.h"
#include "dsm/sim/network.h"
#include "dsm/workload/script.h"

namespace dsm {
namespace paper {

// Ĥ₁'s cast, by value (see op_to_string letter encoding).
inline constexpr Value kA = 0;
inline constexpr Value kB = 1;
inline constexpr Value kC = 2;
inline constexpr Value kD = 3;
inline constexpr VarId kX1 = 0;
inline constexpr VarId kX2 = 1;
inline constexpr std::size_t kH1Procs = 3;
inline constexpr std::size_t kH1Vars = 2;

/// Ĥ₁ as a directly-constructed history (no simulation): the input to the
/// Table 1 and Figure 7 reproductions and to checker unit tests.
[[nodiscard]] GlobalHistory make_h1_history();

/// Reactive scripts that realize Ĥ₁ under any protocol / latency model.
[[nodiscard]] std::vector<Script> make_h1_scripts();

/// Scripts plus forced per-message latencies reproducing one of the paper's
/// run figures.
struct Choreography {
  std::vector<Script> scripts;
  Network::LatencyOverride latency_override;
};

[[nodiscard]] Choreography make_fig1_run1();  ///< zero delays at p3
[[nodiscard]] Choreography make_fig1_run2();  ///< one necessary delay at p3
[[nodiscard]] Choreography make_fig3();       ///< ANBKH false causality at p3

}  // namespace paper
}  // namespace dsm
