// optcm — random workload generation.
//
// Produces per-process scripts from a seeded specification.  The access
// pattern controls how much read-coupling (and therefore how much genuine
// ↦co structure) the workload creates:
//
//   * kUniform      — every op picks a uniform variable; moderate coupling.
//   * kZipf         — skewed popularity (exponent zipf_s); hot variables
//                     create long read-from chains.
//   * kPartitioned  — each process writes (mostly) its own variable shard
//                     and reads anywhere: little cross-process write
//                     coupling, lots of ‖co concurrency — the regime where
//                     ANBKH's false causality is most wasteful.
//   * kHotspot      — a fraction of accesses hit variable 0, the rest
//                     uniform; the classic contended-counter shape.
//
// Write values are globally unique (encode issuer and sequence), which makes
// histories easy to eyeball in traces.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dsm/common/rng.h"
#include "dsm/objects/schema.h"
#include "dsm/protocols/replication.h"
#include "dsm/protocols/subscription.h"
#include "dsm/workload/script.h"

namespace dsm {

enum class AccessPattern : std::uint8_t {
  kUniform,
  kZipf,
  kPartitioned,
  kHotspot,
};

[[nodiscard]] const char* to_string(AccessPattern p) noexcept;

struct WorkloadSpec {
  std::size_t n_procs = 4;
  std::size_t n_vars = 8;
  std::size_t ops_per_proc = 100;
  double write_fraction = 0.5;   ///< probability an op is a write
  AccessPattern pattern = AccessPattern::kUniform;
  double zipf_s = 0.9;           ///< kZipf exponent
  double hotspot_fraction = 0.2; ///< kHotspot: probability of hitting var 0
  double remote_write_fraction = 0.1;  ///< kPartitioned: writes off own shard
  SimTime mean_gap = sim_us(500);///< exponential think time between ops
  std::uint64_t seed = 1;

  [[nodiscard]] std::string describe() const;
};

/// Deterministic: equal specs yield equal scripts.
[[nodiscard]] std::vector<Script> generate_workload(const WorkloadSpec& spec);

/// Replication-aware variant for PartialOptP: every process only reads and
/// writes variables it replicates (uniformly over its shard; the spec's
/// pattern field is ignored).  Requires every process to replicate at least
/// one variable.
[[nodiscard]] std::vector<Script> generate_replica_workload(
    const WorkloadSpec& spec, const ReplicationMap& map);

/// Subscription-aware variant for ShardedOptP: every process only reads and
/// writes variables it subscribes to.  Honors the spec's pattern over the
/// process's subscribed set — kZipf skews popularity by the variable's rank
/// within that set (exponent zipf_s), everything else picks uniformly.
/// Requires every process to subscribe to at least one variable.
[[nodiscard]] std::vector<Script> generate_subscriber_workload(
    const WorkloadSpec& spec, const SubscriptionMap& map);

/// Typed-workload operation mix: relative integer weights over four
/// operation categories, mapped per variable spec:
///
///   | category      | register | counter | cas-register     | log    | set      |
///   | R accessor    | r        | get     | r                | scan   | contains |
///   | W mutation    | w        | inc     | w                | append | add      |
///   | C conditional | w        | inc     | cas              | append | add      |
///   | A anti        | w        | dec     | w                | append | remove   |
///
/// Specs without a conditional/anti operation fold those categories into
/// their primary mutation, so one mix string drives a heterogeneous schema.
struct ObjectMix {
  std::uint32_t reads = 6;
  std::uint32_t writes = 2;
  std::uint32_t cond = 1;
  std::uint32_t anti = 1;

  /// Parses "R:W:C:A" (non-negative integers, at least one positive),
  /// e.g. "6:2:1:1".  Nullopt + *error on malformed input.
  [[nodiscard]] static std::optional<ObjectMix> parse(
      std::string_view text, std::string* error = nullptr);

  [[nodiscard]] std::string str() const;
};

/// Typed-object workload over `schema`: every op draws its variable from a
/// Zipf(spec.zipf_s) popularity ranking (rank 0 = x1; s = 0 is uniform) and
/// its category from `mix`.  Mutation operands come from a small domain
/// (0..9) so CAS races and set membership flips actually collide; register
/// variables fall back to plain uniquely-valued write/read steps.
/// Deterministic: equal (spec, schema, mix) yield equal scripts.
[[nodiscard]] std::vector<Script> generate_mixed_object_workload(
    const WorkloadSpec& spec, const ObjectSchema& schema, const ObjectMix& mix);

}  // namespace dsm
