// optcm — random workload generation.
//
// Produces per-process scripts from a seeded specification.  The access
// pattern controls how much read-coupling (and therefore how much genuine
// ↦co structure) the workload creates:
//
//   * kUniform      — every op picks a uniform variable; moderate coupling.
//   * kZipf         — skewed popularity (exponent zipf_s); hot variables
//                     create long read-from chains.
//   * kPartitioned  — each process writes (mostly) its own variable shard
//                     and reads anywhere: little cross-process write
//                     coupling, lots of ‖co concurrency — the regime where
//                     ANBKH's false causality is most wasteful.
//   * kHotspot      — a fraction of accesses hit variable 0, the rest
//                     uniform; the classic contended-counter shape.
//
// Write values are globally unique (encode issuer and sequence), which makes
// histories easy to eyeball in traces.

#pragma once

#include <string>
#include <vector>

#include "dsm/common/rng.h"
#include "dsm/protocols/replication.h"
#include "dsm/protocols/subscription.h"
#include "dsm/workload/script.h"

namespace dsm {

enum class AccessPattern : std::uint8_t {
  kUniform,
  kZipf,
  kPartitioned,
  kHotspot,
};

[[nodiscard]] const char* to_string(AccessPattern p) noexcept;

struct WorkloadSpec {
  std::size_t n_procs = 4;
  std::size_t n_vars = 8;
  std::size_t ops_per_proc = 100;
  double write_fraction = 0.5;   ///< probability an op is a write
  AccessPattern pattern = AccessPattern::kUniform;
  double zipf_s = 0.9;           ///< kZipf exponent
  double hotspot_fraction = 0.2; ///< kHotspot: probability of hitting var 0
  double remote_write_fraction = 0.1;  ///< kPartitioned: writes off own shard
  SimTime mean_gap = sim_us(500);///< exponential think time between ops
  std::uint64_t seed = 1;

  [[nodiscard]] std::string describe() const;
};

/// Deterministic: equal specs yield equal scripts.
[[nodiscard]] std::vector<Script> generate_workload(const WorkloadSpec& spec);

/// Replication-aware variant for PartialOptP: every process only reads and
/// writes variables it replicates (uniformly over its shard; the spec's
/// pattern field is ignored).  Requires every process to replicate at least
/// one variable.
[[nodiscard]] std::vector<Script> generate_replica_workload(
    const WorkloadSpec& spec, const ReplicationMap& map);

/// Subscription-aware variant for ShardedOptP: every process only reads and
/// writes variables it subscribes to.  Honors the spec's pattern over the
/// process's subscribed set — kZipf skews popularity by the variable's rank
/// within that set (exponent zipf_s), everything else picks uniformly.
/// Requires every process to subscribe to at least one variable.
[[nodiscard]] std::vector<Script> generate_subscriber_workload(
    const WorkloadSpec& spec, const SubscriptionMap& map);

}  // namespace dsm
