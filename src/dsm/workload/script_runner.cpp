#include "dsm/workload/script_runner.h"

#include <utility>

#include "dsm/common/contracts.h"
#include "dsm/objects/object_store.h"
#include "dsm/telemetry/telemetry.h"

namespace dsm {

ScriptRunner::ScriptRunner(EventQueue& queue, RunRecorder& recorder,
                           ProtoFn proto, ProcessId self, const Script& script,
                           AfterOp after_op, std::vector<std::uint64_t>* issued)
    : queue_(&queue),
      recorder_(&recorder),
      proto_(std::move(proto)),
      self_(self),
      script_(&script),
      after_op_(std::move(after_op)),
      issued_(issued) {}

void ScriptRunner::begin() {
  if (next_ > 0 && next_ < script_->size()) {
    // Resuming mid-script after a process restart (set_start_index): the
    // step's think-time delay — relative to the previous op — elapsed long
    // ago, while the process was down.  Fire the overdue step immediately;
    // later steps keep their scripted delays.
    const std::size_t idx = next_;
    queue_->schedule_after(0, [this, idx] { execute(idx); });
    return;
  }
  schedule_step(next_, 0);
}

void ScriptRunner::resume() {
  down_ = false;
  if (stashed_) {
    stashed_ = false;
    const std::size_t idx = stash_idx_;
    queue_->schedule_after(0, [this, idx] { execute(idx); });
  }
}

void ScriptRunner::schedule_step(std::size_t idx, SimTime extra_delay) {
  if (idx >= script_->size()) return;
  const ScriptStep& step = (*script_)[idx];
  queue_->schedule_after(step.delay * time_scale_ + extra_delay,
                         [this, idx] { execute(idx); });
}

void ScriptRunner::execute(std::size_t idx) {
  if (down_) {
    // The process is crashed; park the step until the restart.
    stashed_ = true;
    stash_idx_ = idx;
    return;
  }
  CausalProtocol* proto = proto_();
  DSM_REQUIRE(proto != nullptr);
  const ScriptStep& step = (*script_)[idx];
  switch (step.kind) {
    case StepKind::kWrite: {
      recorder_->record_write(self_, step.var, step.value);
      if (telemetry_ != nullptr)
        telemetry_->record_write_op(self_, step.var, step.value);
      proto->write(step.var, step.value);
      if (issued_ != nullptr) ++(*issued_)[self_];
      break;
    }
    case StepKind::kRead: {
      const ReadResult r = proto->read(step.var);
      recorder_->record_read(self_, step.var, r);
      break;
    }
    case StepKind::kReadUntil: {
      // Poll without reading; fire the one real read when the awaited
      // value is visible (or the timeout elapsed).
      if (proto->peek(step.var).value != step.value &&
          waited_ < step.timeout * time_scale_) {
        waited_ += step.poll_every * time_scale_;
        queue_->schedule_after(step.poll_every * time_scale_,
                               [this, idx] { execute(idx); });
        return;
      }
      waited_ = 0;
      const ReadResult r = proto->read(step.var);
      recorder_->record_read(self_, step.var, r);
      break;
    }
    case StepKind::kMutate: {
      recorder_->record_mutation(self_, step.var, step.spec, step.opcode,
                                 step.value, step.arg2);
      if (telemetry_ != nullptr) {
        telemetry_->record_write_op(self_, step.var, step.value);
        telemetry_->record_object_op(self_, static_cast<SpecId>(step.spec));
      }
      proto->write_typed(step.var, step.spec, step.opcode, step.value,
                         step.arg2);
      if (issued_ != nullptr) ++(*issued_)[self_];
      break;
    }
    case StepKind::kObserve: {
      DSM_REQUIRE(objects_ != nullptr);
      // The protocol read runs first: its Write_co merge installs every
      // causally required mutation, so the store's state and visibility
      // counts are exactly what causal consistency lets the accessor see.
      const ReadResult r = proto->read(step.var);
      const Value answer = objects_->observe(
          self_, step.var, static_cast<OpCode>(step.opcode), step.value);
      recorder_->record_accessor(self_, step.var, step.spec, step.opcode,
                                 step.value, answer, r.writer,
                                 objects_->visible_counts(self_, step.var));
      if (telemetry_ != nullptr)
        telemetry_->record_object_op(self_, static_cast<SpecId>(step.spec));
      break;
    }
  }
  if (after_op_) after_op_();
  next_ = idx + 1;
  schedule_step(next_, 0);
}

}  // namespace dsm
