#include "dsm/workload/objects_demo.h"

namespace dsm {
namespace {

constexpr VarId kCtr = 0;   // x1 counter
constexpr VarId kSet = 1;   // x2 set
constexpr VarId kLog = 2;   // x3 log
constexpr VarId kCas = 3;   // x4 cas-register
constexpr VarId kBar = 4;   // x5 register barrier

}  // namespace

std::shared_ptr<const ObjectSchema> make_objects_demo_schema() {
  return std::make_shared<const ObjectSchema>(std::vector<SpecId>{
      SpecId::kCounter, SpecId::kSet, SpecId::kLog, SpecId::kCasRegister,
      SpecId::kRegister});
}

std::vector<Script> make_objects_demo_scripts() {
  Script p1;
  p1.push_back(mutate_step(0, kCtr, SpecId::kCounter, OpCode::kInc, 5));
  p1.push_back(mutate_step(2, kSet, SpecId::kSet, OpCode::kAdd, 7));
  p1.push_back(mutate_step(2, kLog, SpecId::kLog, OpCode::kAppend, 100));
  p1.push_back(mutate_step(2, kCas, SpecId::kCasRegister, OpCode::kWrite, 3));
  p1.push_back(write_step(2, kBar, 1));

  Script p2;
  p2.push_back(read_until_step(0, kBar, 1, sim_us(2)));
  p2.push_back(observe_step(2, kCtr, SpecId::kCounter, OpCode::kGet));
  p2.push_back(observe_step(2, kSet, SpecId::kSet, OpCode::kContains, 7));
  p2.push_back(
      mutate_step(2, kCas, SpecId::kCasRegister, OpCode::kCas, 3, 9));
  p2.push_back(mutate_step(2, kCtr, SpecId::kCounter, OpCode::kDec, 2));
  p2.push_back(mutate_step(2, kSet, SpecId::kSet, OpCode::kRemove, 7));
  p2.push_back(mutate_step(2, kLog, SpecId::kLog, OpCode::kAppend, 200));
  p2.push_back(write_step(2, kBar, 2));

  Script p3;
  p3.push_back(read_until_step(0, kBar, 2, sim_us(2)));
  p3.push_back(observe_step(2, kCtr, SpecId::kCounter, OpCode::kGet));
  p3.push_back(observe_step(2, kSet, SpecId::kSet, OpCode::kContains, 7));
  p3.push_back(observe_step(2, kCas, SpecId::kCasRegister, OpCode::kRead));
  p3.push_back(observe_step(2, kLog, SpecId::kLog, OpCode::kScan));

  return {p1, p2, p3};
}

}  // namespace dsm
