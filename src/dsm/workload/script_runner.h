// optcm — per-process script execution as chained queue events.
//
// A ScriptRunner walks one process's Script step by step on an EventQueue,
// recording operations into the RunRecorder exactly when they are issued.
// It is deployment-agnostic: the simulator drives it on virtual time, and
// the multi-process ProcessNode drives it on a wall-clock-synchronized
// queue — the same stepping, polling, and recording logic in both, which is
// what makes observer-event logs comparable across deployments.
//
// Crash-mode extras (used by the simulator's crash path): the protocol is
// fetched through an accessor (the instance is rebuilt on restart), a step
// firing while the process is down is stashed and replayed on resume(),
// `after_op` (the checkpoint hook) runs after every completed operation, and
// `issued` counts this process's writes (the recovery-completion target).

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dsm/protocols/run_recorder.h"
#include "dsm/sim/event_queue.h"
#include "dsm/workload/script.h"

namespace dsm {

class ObjectStore;
class RunTelemetry;

class ScriptRunner {
 public:
  using ProtoFn = std::function<CausalProtocol*()>;
  using AfterOp = std::function<void()>;

  /// \pre `queue`, `recorder`, and `script` outlive the runner; `proto()`
  ///      returns the live protocol whenever an event fires while up.
  ScriptRunner(EventQueue& queue, RunRecorder& recorder, ProtoFn proto,
               ProcessId self, const Script& script, AfterOp after_op = {},
               std::vector<std::uint64_t>* issued = nullptr);

  /// Schedule the first step (delay relative to queue.now()).
  void begin();

  /// Start at step `k` instead of 0 (durable restart: the first k steps were
  /// already executed by a previous incarnation and replayed from its WAL).
  /// Call before begin().
  void set_start_index(std::size_t k) noexcept { next_ = k; }

  /// Attach run telemetry (write-operation events); may stay null.
  void set_telemetry(RunTelemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

  /// Attach the run's ObjectStore; required before any kMutate/kObserve step
  /// fires (typed steps abort without one).  May stay null for register-only
  /// scripts.
  void set_objects(ObjectStore* objects) noexcept { objects_ = objects; }

  /// Multiply every step delay and poll interval by `scale` (the net runtime
  /// stretches microsecond-granularity sim scripts onto wall-clock time).
  /// Call before begin().
  void set_time_scale(std::uint64_t scale) noexcept { time_scale_ = scale; }

  [[nodiscard]] bool done() const noexcept { return next_ >= script_->size(); }

  /// Crash-mode hooks: park steps while down, replay the parked one on
  /// resume.
  void suspend() noexcept { down_ = true; }
  void resume();

 private:
  void schedule_step(std::size_t idx, SimTime extra_delay);
  void execute(std::size_t idx);

  EventQueue* queue_;
  RunRecorder* recorder_;
  RunTelemetry* telemetry_ = nullptr;
  ObjectStore* objects_ = nullptr;
  ProtoFn proto_;
  ProcessId self_;
  const Script* script_;
  AfterOp after_op_;
  std::vector<std::uint64_t>* issued_;
  std::uint64_t time_scale_ = 1;
  std::size_t next_ = 0;
  SimTime waited_ = 0;
  bool down_ = false;
  bool stashed_ = false;
  std::size_t stash_idx_ = 0;
};

}  // namespace dsm
