// optcm — network fault injection.
//
// The paper assumes reliable exactly-once channels (Section 3.1).  The
// simulator can instead model a faulty datagram network — independent,
// per-message drops and duplications — over which dsm/sim/reliable.h builds
// the reliable channel the paper assumes.  Faults are deterministic in the
// seed and the message's channel coordinates, like everything else here.

#pragma once

#include <cstdint>

#include "dsm/common/rng.h"
#include "dsm/common/types.h"

namespace dsm {

struct FaultPlan {
  double drop = 0.0;       ///< probability a message silently vanishes
  double duplicate = 0.0;  ///< probability a message is delivered twice
  std::uint64_t seed = 0;

  [[nodiscard]] bool active() const noexcept {
    return drop > 0.0 || duplicate > 0.0;
  }

  /// Deterministic per-message fault draw.
  struct Draw {
    bool dropped = false;
    bool duplicated = false;
  };

  [[nodiscard]] Draw draw(ProcessId from, ProcessId to,
                          std::uint64_t pair_index) const {
    if (!active()) return {};
    std::uint64_t s = seed ^ 0xFA017;
    s ^= splitmix64(s) ^ (std::uint64_t{from} << 32 | to);
    s ^= splitmix64(s) ^ pair_index;
    Rng rng(splitmix64(s));
    Draw d;
    d.dropped = rng.chance(drop);
    if (!d.dropped) d.duplicated = rng.chance(duplicate);
    return d;
  }
};

struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
};

}  // namespace dsm
