// optcm — network and process fault injection.
//
// The paper assumes reliable exactly-once channels and crash-free processes
// (Section 3.1).  The simulator can instead model
//
//   * a faulty datagram network — independent per-message drops and
//     duplications — over which dsm/sim/reliable.h rebuilds the reliable
//     channel the paper assumes;
//   * partition windows — pairwise link blackouts with a heal time, during
//     which every message on the severed link vanishes (evaluated at SEND
//     time: a message launched before the partition starts still arrives,
//     exactly like a packet already on the wire);
//   * process crashes with restart (CrashPlan) — a crashed process loses all
//     volatile state and all in-flight traffic addressed to it; recovery is
//     checkpoint + anti-entropy catch-up (see docs/FAULTS.md).
//
// Faults are deterministic in the seed and the message's channel
// coordinates, like everything else here.  The per-message draw is a
// splitmix64 chain over (seed, from→to, pair_index): each coordinate is
// folded in through the full avalanche finalizer, so draws for nearby
// channels or consecutive messages are statistically independent (the
// previous xor-chain correlated them; see tests/test_reliable.cpp).

#pragma once

#include <cstdint>
#include <vector>

#include "dsm/common/contracts.h"
#include "dsm/common/rng.h"
#include "dsm/common/types.h"
#include "dsm/sim/sim_time.h"

namespace dsm {

/// Bidirectional link blackout between processes `a` and `b` during
/// [start, heal).  Messages SENT inside the window are dropped; messages
/// already in flight when the window opens still arrive.
struct PartitionWindow {
  SimTime start = 0;
  SimTime heal = 0;  ///< exclusive end; heal > start
  ProcessId a = 0;
  ProcessId b = 0;
};

struct FaultPlan {
  double drop = 0.0;       ///< probability a message silently vanishes
  double duplicate = 0.0;  ///< probability a message is delivered twice
  std::uint64_t seed = 0;
  std::vector<PartitionWindow> partitions;

  [[nodiscard]] bool active() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || !partitions.empty();
  }

  /// True when the directed link from→to is inside a partition window at
  /// `now`.  Windows are symmetric (a↔b).
  [[nodiscard]] bool severed(ProcessId from, ProcessId to,
                             SimTime now) const noexcept {
    for (const PartitionWindow& w : partitions) {
      const bool on_link = (from == w.a && to == w.b) ||
                           (from == w.b && to == w.a);
      if (on_link && now >= w.start && now < w.heal) return true;
    }
    return false;
  }

  /// Add pairwise windows cutting `island` off from every other process in
  /// [start, heal) — the classic "minority partition" shape.
  void split(const std::vector<ProcessId>& island, std::size_t n_procs,
             SimTime start, SimTime heal) {
    DSM_REQUIRE(heal > start);
    std::vector<bool> inside(n_procs, false);
    for (ProcessId p : island) {
      DSM_REQUIRE(p < n_procs);
      inside[p] = true;
    }
    for (ProcessId a = 0; a < n_procs; ++a) {
      if (!inside[a]) continue;
      for (ProcessId b = 0; b < n_procs; ++b) {
        if (inside[b]) continue;
        partitions.push_back(PartitionWindow{start, heal, a, b});
      }
    }
  }

  /// Deterministic per-message fault draw.
  struct Draw {
    bool dropped = false;
    bool duplicated = false;
  };

  [[nodiscard]] Draw draw(ProcessId from, ProcessId to,
                          std::uint64_t pair_index) const {
    if (drop <= 0.0 && duplicate <= 0.0) return {};
    // Sponge-like chain: fold each coordinate in through the splitmix64
    // finalizer so every (seed, channel, index) triple lands in its own
    // stream.  `splitmix64` advances its state by the golden gamma and
    // returns the avalanche of the new state, so `finalize(s) ^ coord` is a
    // full-width mix per step.
    std::uint64_t s = seed;
    s = splitmix64(s) ^ ((std::uint64_t{from} << 32) | std::uint64_t{to});
    s = splitmix64(s) ^ pair_index;
    Rng rng(splitmix64(s));
    Draw d;
    d.dropped = rng.chance(drop);
    if (!d.dropped) d.duplicated = rng.chance(duplicate);
    return d;
  }
};

/// One scheduled crash: process `p` dies at `at` (volatile state and all
/// in-flight traffic to it are lost) and restarts at `restart_at` from its
/// last checkpoint.  Permanent crashes are not modeled — Theorem 5 liveness
/// is only meaningful for processes that come back.
struct CrashEvent {
  ProcessId p = 0;
  SimTime at = 0;
  SimTime restart_at = 0;
};

struct CrashPlan {
  std::vector<CrashEvent> events;

  [[nodiscard]] bool active() const noexcept { return !events.empty(); }

  /// Rejects malformed plans: zero-length downtime or overlapping windows
  /// for the same process (a process cannot crash while already down).
  void validate(std::size_t n_procs) const {
    for (const CrashEvent& e : events) {
      DSM_REQUIRE(e.p < n_procs);
      DSM_REQUIRE(e.restart_at > e.at);
      for (const CrashEvent& o : events) {
        if (&o == &e || o.p != e.p) continue;
        const bool disjoint = o.restart_at <= e.at || o.at >= e.restart_at;
        DSM_REQUIRE(disjoint && "overlapping crash windows for one process");
      }
    }
  }
};

struct FaultStats {
  std::uint64_t dropped = 0;            ///< random per-message drops
  std::uint64_t duplicated = 0;
  std::uint64_t partition_dropped = 0;  ///< sends inside a partition window
  std::uint64_t crash_dropped = 0;      ///< deliveries to a crashed process
};

}  // namespace dsm
