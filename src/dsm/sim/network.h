// optcm — simulated reliable network.
//
// Implements exactly the channel assumptions of paper Section 3.1: every
// message sent is delivered exactly once, no spurious messages, unbounded but
// finite delay.  Channels are NOT FIFO — two messages on the same directed
// link may overtake each other when the latency model reorders them; the
// protocols' enabling conditions, not the transport, are responsible for
// ordering (exactly the setting the paper analyzes).
//
// An optional per-message override lets benches choreograph the exact arrival
// orders of the paper's figures.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "dsm/common/sink.h"
#include "dsm/common/transport.h"
#include "dsm/common/types.h"
#include "dsm/sim/event_queue.h"
#include "dsm/sim/fault.h"
#include "dsm/sim/latency.h"

namespace dsm {

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  SimTime max_latency_seen = 0;
};

class Network final : public DatagramTransport {
 public:
  /// Inspect a message about to be sent and, if engaged, dictate its latency
  /// (used to reproduce the paper's choreographed runs).
  using LatencyOverride = std::function<std::optional<SimTime>(
      ProcessId from, ProcessId to, std::span<const std::uint8_t> bytes)>;

  Network(EventQueue& queue, const LatencyModel& latency, std::size_t n_procs);

  /// Register the sink for process p.  Must be called for all processes
  /// before any send; sinks must outlive the network (or be detach()ed).
  void attach(ProcessId p, MessageSink& sink) override;

  /// Remove process p's sink — the crash path.  Messages already in flight
  /// to p (and any sent while detached) are counted as crash drops instead
  /// of delivered.  A later attach() models the restart.
  void detach(ProcessId p);

  /// Unicast `payload` from `from` to `to`; delivery is scheduled on the
  /// event queue after the modeled latency.  In-flight copies (including
  /// fault-injected duplicates) share the payload by refcount.
  void send(ProcessId from, ProcessId to, Payload payload) override;

  /// Fan-out to every process except `from` (paper footnote 5: the
  /// propagation mechanism is irrelevant at this abstraction level).  One
  /// shared payload; no per-receiver byte copies.
  void broadcast(ProcessId from, const Payload& payload);

  void set_latency_override(LatencyOverride hook) { override_ = std::move(hook); }

  /// Turn the network into a faulty datagram service (drops/duplicates).
  /// Protocols expect the paper's reliable channels, so a faulty network
  /// must be paired with the ReliableNode layer (dsm/sim/reliable.h).
  void set_fault_plan(const FaultPlan& plan) { fault_ = plan; }

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultStats& fault_stats() const noexcept { return fstats_; }
  [[nodiscard]] std::size_t n_procs() const override { return sinks_.size(); }

 private:
  EventQueue* queue_;
  const LatencyModel* latency_;
  std::vector<MessageSink*> sinks_;
  std::vector<std::uint64_t> pair_index_;  // per directed channel counter
  LatencyOverride override_;
  FaultPlan fault_;
  NetworkStats stats_;
  FaultStats fstats_;
  bool detach_used_ = false;  // once true, a null sink means "crashed"

  [[nodiscard]] std::uint64_t& pair_counter(ProcessId from, ProcessId to);
  void deliver_now(ProcessId from, ProcessId to, const Payload& payload);
};

}  // namespace dsm
