// optcm — simulated time.
//
// Integer microseconds: floating-point time would make run reproducibility
// hostage to rounding, and every determinism test in this repository hinges
// on "same seed ⇒ byte-identical trace".

#pragma once

#include <cstdint>

namespace dsm {

using SimTime = std::uint64_t;  ///< microseconds since simulation start

inline constexpr SimTime kSimTimeMax = ~SimTime{0};

/// Convenience literals for readable bench/test code.
constexpr SimTime sim_us(std::uint64_t v) noexcept { return v; }
constexpr SimTime sim_ms(std::uint64_t v) noexcept { return v * 1000; }
constexpr SimTime sim_s(std::uint64_t v) noexcept { return v * 1000 * 1000; }

}  // namespace dsm
