#include "dsm/sim/reliable.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "dsm/common/contracts.h"
#include "dsm/common/rng.h"

namespace dsm {

ReliableNode::ReliableNode(EventQueue& queue, DatagramTransport& transport,
                           ProcessId self, MessageSink& upper, Config config)
    : queue_(&queue),
      network_(&transport),
      self_(self),
      upper_(&upper),
      config_(config),
      tx_(transport.n_procs()),
      rx_(transport.n_procs()) {
  DSM_REQUIRE(config_.min_rto > 0);
  DSM_REQUIRE(config_.min_rto <= config_.max_rto);
  DSM_REQUIRE(config_.rto > 0);
  for (PeerTx& peer : tx_) peer.rto = config_.rto;
  transport.attach(self, *this);
}

ReliableNode::~ReliableNode() { *alive_ = false; }

std::vector<std::uint8_t> ReliableNode::encode_frame(
    FrameType type, std::uint64_t seq, std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(seq);
  w.bytes(payload);
  return std::move(w).take();
}

void ReliableNode::send(ProcessId to, Payload payload) {
  DSM_REQUIRE(to < tx_.size());
  DSM_REQUIRE(to != self_);
  DSM_REQUIRE(payload != nullptr);
  PeerTx& peer = tx_[to];
  const std::uint64_t seq = peer.next_seq++;
  peer.unacked.emplace(seq,
                       TxEntry{std::move(payload), queue_->now(), false});
  ++stats_.data_sent;
  transmit(to, seq, *peer.unacked.at(seq).payload);
  arm_timer(to, seq, 0, peer.rto);
}

void ReliableNode::broadcast(const Payload& payload) {
  for (ProcessId to = 0; to < tx_.size(); ++to) {
    if (to != self_) send(to, payload);
  }
}

void ReliableNode::transmit(ProcessId to, std::uint64_t seq,
                            const std::vector<std::uint8_t>& payload) {
  // The DATA frame is re-encoded per peer by necessity (sequence numbers are
  // per-channel); the application payload itself is never copied — it lives
  // in the shared TxEntry until acked.
  network_->send(self_, to,
                 make_payload(encode_frame(FrameType::kData, seq, payload)));
}

SimTime ReliableNode::jitter(ProcessId to, std::uint64_t seq,
                             std::size_t attempt, SimTime interval) const {
  const SimTime bound = interval / 4;
  if (bound == 0) return 0;
  // Same sponge chain as FaultPlan::draw: fold each coordinate through the
  // splitmix64 finalizer so every (node, peer, seq, attempt) gets an
  // independent, reproducible draw.
  std::uint64_t s = config_.jitter_seed;
  s = splitmix64(s) ^ ((std::uint64_t{self_} << 32) | std::uint64_t{to});
  s = splitmix64(s) ^ seq;
  s = splitmix64(s) ^ static_cast<std::uint64_t>(attempt);
  return splitmix64(s) % (bound + 1);
}

void ReliableNode::arm_timer(ProcessId to, std::uint64_t seq,
                             std::size_t attempt, SimTime interval) {
  const SimTime wait = interval + jitter(to, seq, attempt, interval);
  queue_->schedule_after(
      wait, [this, alive = alive_, to, seq, attempt, interval] {
        if (!*alive) return;  // node crashed/destroyed; timer is stale
        const auto it = tx_[to].unacked.find(seq);
        if (it == tx_[to].unacked.end()) return;  // acked meanwhile
        if (attempt >= config_.max_retries) {
          ++stats_.abandoned;
          tx_[to].unacked.erase(it);
          if (config_.on_abandon) {
            config_.on_abandon(to, seq);
            return;
          }
          DSM_REQUIRE(false &&
                      "ARQ abandoned a payload: max_retries exhausted — the "
                      "channel can no longer claim exactly-once delivery");
        }
        ++stats_.retransmissions;
        it->second.retransmitted = true;  // Karn: disqualify from RTT sampling
        transmit(to, seq, *it->second.payload);
        // Exponential backoff capped at max_rto.
        const SimTime next = std::min(interval * 2, config_.max_rto);
        arm_timer(to, seq, attempt + 1, next);
      });
}

SimTime ReliableNode::clamp_rto(double rto_us) const {
  const double lo = static_cast<double>(config_.min_rto);
  const double hi = static_cast<double>(config_.max_rto);
  return static_cast<SimTime>(std::llround(std::clamp(rto_us, lo, hi)));
}

void ReliableNode::sample_rtt(PeerTx& peer, SimTime rtt) {
  const double r = static_cast<double>(rtt);
  if (!peer.have_rtt) {
    peer.srtt = r;
    peer.rttvar = r / 2.0;
    peer.have_rtt = true;
  } else {
    peer.rttvar = 0.75 * peer.rttvar + 0.25 * std::abs(peer.srtt - r);
    peer.srtt = 0.875 * peer.srtt + 0.125 * r;
  }
  peer.rto = clamp_rto(peer.srtt + 4.0 * peer.rttvar);
  ++stats_.rtt_samples;
}

void ReliableNode::on_ack(ProcessId from, std::uint64_t seq) {
  PeerTx& peer = tx_[from];
  const auto it = peer.unacked.find(seq);
  if (it == peer.unacked.end()) return;  // duplicate ACK
  if (!it->second.retransmitted) {
    sample_rtt(peer, queue_->now() - it->second.first_sent);
  }
  peer.unacked.erase(it);
}

void ReliableNode::deliver(ProcessId from, std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  const auto type = r.u8();
  const auto seq = r.u64();
  if (!type || !seq || *type > static_cast<std::uint8_t>(FrameType::kAck)) {
    // A frame this class did not produce.  The simulator's network cannot
    // corrupt bytes, but a real socket peer can say anything; dropping (and
    // counting) is the only safe response — aborting would hand a remote
    // byte stream a kill switch.
    ++stats_.malformed_dropped;
    return;
  }

  switch (static_cast<FrameType>(*type)) {
    case FrameType::kData: {
      // Always (re-)ACK: the original ACK may have been lost.
      ++stats_.acks_sent;
      network_->send(self_, from,
                     make_payload(encode_frame(FrameType::kAck, *seq, {})));

      PeerRx& peer = rx_[from];
      if (peer.saw(*seq)) {
        ++stats_.duplicates_suppressed;
        return;
      }
      peer.mark(*seq);
      ++stats_.delivered;
      upper_->deliver(from, r.rest());
      return;
    }
    case FrameType::kAck: {
      on_ack(from, *seq);
      return;
    }
  }
}

SimTime ReliableNode::current_rto(ProcessId to) const {
  DSM_REQUIRE(to < tx_.size());
  return tx_[to].rto;
}

bool ReliableNode::quiescent() const noexcept {
  for (const auto& peer : tx_) {
    if (!peer.unacked.empty()) return false;
  }
  return true;
}

bool ReliableNode::quiescent_except(
    const std::vector<bool>& excluded) const noexcept {
  for (std::size_t p = 0; p < tx_.size(); ++p) {
    if (p < excluded.size() && excluded[p]) continue;
    if (!tx_[p].unacked.empty()) return false;
  }
  return true;
}

void ReliableNode::skip_tx_sequences(std::uint64_t skip) noexcept {
  for (PeerTx& peer : tx_) peer.next_seq += skip;
}

void ReliableNode::snapshot(ByteWriter& w) const {
  w.u64(tx_.size());
  for (const PeerTx& peer : tx_) {
    w.u64(peer.next_seq);
    w.u64(peer.unacked.size());
    for (const auto& [seq, entry] : peer.unacked) {
      w.u64(seq);
      w.u64(entry.payload->size());
      w.bytes(*entry.payload);
    }
    w.u8(peer.have_rtt ? 1 : 0);
    w.u64(std::bit_cast<std::uint64_t>(peer.srtt));
    w.u64(std::bit_cast<std::uint64_t>(peer.rttvar));
    w.u64(peer.rto);
  }
  for (const PeerRx& peer : rx_) {
    w.u64(peer.watermark);
    std::vector<std::uint64_t> above(peer.seen_above.begin(),
                                     peer.seen_above.end());
    w.u64_vec(above);
  }
}

bool ReliableNode::restore(ByteReader& r) {
  const auto n = r.u64();
  if (!n || *n != tx_.size()) return false;
  for (PeerTx& peer : tx_) {
    const auto next_seq = r.u64();
    const auto count = r.u64();
    if (!next_seq || !count) return false;
    peer.next_seq = *next_seq;
    peer.unacked.clear();
    for (std::uint64_t i = 0; i < *count; ++i) {
      const auto seq = r.u64();
      const auto len = r.u64();
      if (!seq || !len) return false;
      const auto raw = r.take(static_cast<std::size_t>(*len));
      if (!raw) return false;
      // Restored payloads count as retransmitted: their original send time
      // is gone, so Karn's rule disqualifies them from RTT sampling.
      peer.unacked.emplace(
          *seq,
          TxEntry{make_payload({raw->begin(), raw->end()}), queue_->now(),
                  true});
    }
    const auto have = r.u8();
    const auto srtt = r.u64();
    const auto rttvar = r.u64();
    const auto rto = r.u64();
    if (!have || !srtt || !rttvar || !rto) return false;
    peer.have_rtt = *have != 0;
    peer.srtt = std::bit_cast<double>(*srtt);
    peer.rttvar = std::bit_cast<double>(*rttvar);
    peer.rto = *rto;
  }
  for (PeerRx& peer : rx_) {
    const auto watermark = r.u64();
    auto above = r.u64_vec();
    if (!watermark || !above) return false;
    peer.watermark = *watermark;
    peer.seen_above = std::set<std::uint64_t>(above->begin(), above->end());
  }
  // Everything unacked at checkpoint time is immediately retransmitted: the
  // peers may never have seen it, and the pre-crash timers died with the old
  // node instance.
  for (ProcessId to = 0; to < tx_.size(); ++to) {
    for (const auto& [seq, entry] : tx_[to].unacked) {
      ++stats_.retransmissions;
      transmit(to, seq, *entry.payload);
      arm_timer(to, seq, 0, tx_[to].rto);
    }
  }
  return true;
}

}  // namespace dsm
