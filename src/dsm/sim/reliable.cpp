#include "dsm/sim/reliable.h"

#include "dsm/codec/codec.h"
#include "dsm/common/contracts.h"

namespace dsm {

ReliableNode::ReliableNode(EventQueue& queue, Network& network, ProcessId self,
                           MessageSink& upper, Config config)
    : queue_(&queue),
      network_(&network),
      self_(self),
      upper_(&upper),
      config_(config),
      tx_(network.n_procs()),
      rx_(network.n_procs()) {
  network.attach(self, *this);
}

std::vector<std::uint8_t> ReliableNode::encode_frame(
    FrameType type, std::uint64_t seq, std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(seq);
  w.bytes(payload);
  return std::move(w).take();
}

void ReliableNode::send(ProcessId to, std::vector<std::uint8_t> payload) {
  DSM_REQUIRE(to < tx_.size());
  DSM_REQUIRE(to != self_);
  PeerTx& peer = tx_[to];
  const std::uint64_t seq = peer.next_seq++;
  peer.unacked.emplace(seq, std::move(payload));
  ++stats_.data_sent;
  transmit(to, seq, peer.unacked.at(seq));
  arm_timer(to, seq, 0);
}

void ReliableNode::broadcast(const std::vector<std::uint8_t>& payload) {
  for (ProcessId to = 0; to < tx_.size(); ++to) {
    if (to != self_) send(to, payload);
  }
}

void ReliableNode::transmit(ProcessId to, std::uint64_t seq,
                            const std::vector<std::uint8_t>& payload) {
  network_->send(self_, to, encode_frame(FrameType::kData, seq, payload));
}

void ReliableNode::arm_timer(ProcessId to, std::uint64_t seq,
                             std::size_t attempt) {
  queue_->schedule_after(config_.rto, [this, to, seq, attempt] {
    const auto it = tx_[to].unacked.find(seq);
    if (it == tx_[to].unacked.end()) return;  // acked meanwhile
    if (attempt >= config_.max_retries) {
      // Should never happen with drop < 1; counted so tests can alarm.
      ++stats_.abandoned;
      tx_[to].unacked.erase(it);
      return;
    }
    ++stats_.retransmissions;
    transmit(to, seq, it->second);
    arm_timer(to, seq, attempt + 1);
  });
}

void ReliableNode::deliver(ProcessId from, std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  const auto type = r.u8();
  const auto seq = r.u64();
  DSM_REQUIRE(type.has_value() && seq.has_value());

  switch (static_cast<FrameType>(*type)) {
    case FrameType::kData: {
      // Always (re-)ACK: the original ACK may have been lost.
      ++stats_.acks_sent;
      network_->send(self_, from, encode_frame(FrameType::kAck, *seq, {}));

      PeerRx& peer = rx_[from];
      if (peer.saw(*seq)) {
        ++stats_.duplicates_suppressed;
        return;
      }
      peer.mark(*seq);
      ++stats_.delivered;
      upper_->deliver(from, r.rest());
      return;
    }
    case FrameType::kAck: {
      tx_[from].unacked.erase(*seq);
      return;
    }
  }
  DSM_REQUIRE(false && "unknown frame type");
}

bool ReliableNode::quiescent() const noexcept {
  for (const auto& peer : tx_) {
    if (!peer.unacked.empty()) return false;
  }
  return true;
}

}  // namespace dsm
