#include "dsm/sim/latency.h"

#include <algorithm>
#include <cmath>

#include "dsm/common/contracts.h"
#include "dsm/common/format.h"

namespace dsm {
namespace {

/// Deterministic per-message stream: one-shot Rng seeded from the message's
/// channel coordinates.  Stateless across calls, so latency() is const and
/// thread-safe, and the draw is identical no matter in which order messages
/// are generated.
Rng message_rng(std::uint64_t seed, ProcessId from, ProcessId to,
                std::uint64_t pair_index) {
  std::uint64_t s = seed;
  s ^= splitmix64(s) ^ (std::uint64_t{from} << 32 | to);
  s ^= splitmix64(s) ^ pair_index;
  splitmix64(s);
  return Rng{s};
}

}  // namespace

std::string ConstantLatency::describe() const {
  return "constant(" + std::to_string(delay_) + "us)";
}

UniformLatency::UniformLatency(SimTime lo, SimTime hi, std::uint64_t seed)
    : lo_(lo), hi_(hi), seed_(seed) {
  DSM_REQUIRE(lo <= hi);
}

SimTime UniformLatency::latency(ProcessId from, ProcessId to,
                                std::uint64_t pair_index) const {
  Rng rng = message_rng(seed_, from, to, pair_index);
  return lo_ + rng.below(hi_ - lo_ + 1);
}

std::string UniformLatency::describe() const {
  return "uniform(" + std::to_string(lo_) + ".." + std::to_string(hi_) + "us)";
}

ExponentialLatency::ExponentialLatency(SimTime base, double mean_extra,
                                       std::uint64_t seed)
    : base_(base), mean_extra_(mean_extra), seed_(seed) {
  DSM_REQUIRE(mean_extra > 0.0);
}

SimTime ExponentialLatency::latency(ProcessId from, ProcessId to,
                                    std::uint64_t pair_index) const {
  Rng rng = message_rng(seed_, from, to, pair_index);
  const double extra = rng.exponential(mean_extra_);
  return base_ + static_cast<SimTime>(extra);
}

std::string ExponentialLatency::describe() const {
  return "exponential(base=" + std::to_string(base_) +
         "us, mean_extra=" + fixed(mean_extra_, 1) + "us)";
}

LogNormalLatency::LogNormalLatency(double mu, double sigma, std::uint64_t seed)
    : mu_(mu), sigma_(sigma), seed_(seed) {
  DSM_REQUIRE(sigma >= 0.0);
}

SimTime LogNormalLatency::latency(ProcessId from, ProcessId to,
                                  std::uint64_t pair_index) const {
  Rng rng = message_rng(seed_, from, to, pair_index);
  const double v = rng.lognormal(mu_, sigma_);
  return static_cast<SimTime>(std::max(1.0, v));
}

std::string LogNormalLatency::describe() const {
  return "lognormal(mu=" + fixed(mu_, 2) + ", sigma=" + fixed(sigma_, 2) + ")";
}

SlowLinkLatency::SlowLinkLatency(ProcessId slow_from, ProcessId slow_to,
                                 SimTime slow, SimTime fast)
    : slow_from_(slow_from), slow_to_(slow_to), slow_(slow), fast_(fast) {
  DSM_REQUIRE(slow >= fast);
}

SimTime SlowLinkLatency::latency(ProcessId from, ProcessId to,
                                 std::uint64_t) const {
  return (from == slow_from_ && to == slow_to_) ? slow_ : fast_;
}

std::string SlowLinkLatency::describe() const {
  return "slowlink(" + proc_name(slow_from_) + "->" + proc_name(slow_to_) +
         "=" + std::to_string(slow_) + "us, rest=" + std::to_string(fast_) +
         "us)";
}

const char* to_string(LatencyKind k) noexcept {
  switch (k) {
    case LatencyKind::kConstant: return "constant";
    case LatencyKind::kUniform: return "uniform";
    case LatencyKind::kExponential: return "exponential";
    case LatencyKind::kLogNormal: return "lognormal";
  }
  return "?";
}

std::unique_ptr<LatencyModel> make_latency(LatencyKind kind, SimTime scale,
                                           double spread, std::uint64_t seed) {
  DSM_REQUIRE(scale > 0);
  DSM_REQUIRE(spread >= 0.0);
  switch (kind) {
    case LatencyKind::kConstant:
      return std::make_unique<ConstantLatency>(scale);
    case LatencyKind::kUniform: {
      const auto half = static_cast<SimTime>(static_cast<double>(scale) * spread);
      const SimTime lo = scale > half ? scale - half : 1;
      return std::make_unique<UniformLatency>(lo, scale + half, seed);
    }
    case LatencyKind::kExponential:
      return std::make_unique<ExponentialLatency>(
          scale, std::max(1.0, static_cast<double>(scale) * spread), seed);
    case LatencyKind::kLogNormal: {
      // median exp(mu) == scale; sigma grows with spread.
      const double mu = std::log(static_cast<double>(scale));
      return std::make_unique<LogNormalLatency>(mu, std::max(0.05, spread), seed);
    }
  }
  return nullptr;
}

}  // namespace dsm
