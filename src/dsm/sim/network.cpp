#include "dsm/sim/network.h"

#include <algorithm>

#include "dsm/common/contracts.h"

namespace dsm {

Network::Network(EventQueue& queue, const LatencyModel& latency,
                 std::size_t n_procs)
    : queue_(&queue),
      latency_(&latency),
      sinks_(n_procs, nullptr),
      pair_index_(n_procs * n_procs, 0) {
  DSM_REQUIRE(n_procs >= 1);
}

void Network::attach(ProcessId p, MessageSink& sink) {
  DSM_REQUIRE(p < sinks_.size());
  DSM_REQUIRE(sinks_[p] == nullptr);
  sinks_[p] = &sink;
}

std::uint64_t& Network::pair_counter(ProcessId from, ProcessId to) {
  return pair_index_[static_cast<std::size_t>(from) * sinks_.size() + to];
}

void Network::send(ProcessId from, ProcessId to,
                   std::vector<std::uint8_t> bytes) {
  DSM_REQUIRE(from < sinks_.size());
  DSM_REQUIRE(to < sinks_.size());
  DSM_REQUIRE(from != to);
  MessageSink* sink = sinks_[to];
  DSM_REQUIRE(sink != nullptr);

  const std::uint64_t index = pair_counter(from, to)++;

  SimTime delay;
  std::optional<SimTime> forced;
  if (override_) forced = override_(from, to, bytes);
  if (forced) {
    delay = *forced;
  } else {
    delay = latency_->latency(from, to, index);
  }

  stats_.messages_sent += 1;
  stats_.bytes_sent += bytes.size();
  stats_.max_latency_seen = std::max(stats_.max_latency_seen, delay);

  const FaultPlan::Draw draw = fault_.draw(from, to, index);
  if (draw.dropped) {
    ++fstats_.dropped;
    return;
  }
  if (draw.duplicated) {
    ++fstats_.duplicated;
    // The duplicate takes an independent latency draw: it can arrive before
    // or after the original.
    const SimTime dup_delay =
        forced ? *forced : latency_->latency(from, to, index ^ 0x8000000000000000ULL);
    queue_->schedule_after(dup_delay, [sink, from, payload = bytes]() {
      sink->deliver(from, payload);
    });
  }

  queue_->schedule_after(
      delay, [sink, from, payload = std::move(bytes)]() {
        sink->deliver(from, payload);
      });
}

void Network::broadcast(ProcessId from, const std::vector<std::uint8_t>& bytes) {
  for (ProcessId to = 0; to < sinks_.size(); ++to) {
    if (to != from) send(from, to, bytes);
  }
}

}  // namespace dsm
