#include "dsm/sim/network.h"

#include <algorithm>

#include "dsm/common/contracts.h"

namespace dsm {

Network::Network(EventQueue& queue, const LatencyModel& latency,
                 std::size_t n_procs)
    : queue_(&queue),
      latency_(&latency),
      sinks_(n_procs, nullptr),
      pair_index_(n_procs * n_procs, 0) {
  DSM_REQUIRE(n_procs >= 1);
}

void Network::attach(ProcessId p, MessageSink& sink) {
  DSM_REQUIRE(p < sinks_.size());
  DSM_REQUIRE(sinks_[p] == nullptr);
  sinks_[p] = &sink;
}

void Network::detach(ProcessId p) {
  DSM_REQUIRE(p < sinks_.size());
  DSM_REQUIRE(sinks_[p] != nullptr);
  sinks_[p] = nullptr;
  detach_used_ = true;
}

void Network::deliver_now(ProcessId from, ProcessId to,
                          const Payload& payload) {
  // The sink is resolved at DELIVERY time, not capture time: the receiver
  // may have crashed (detached) or restarted (re-attached a fresh sink)
  // while the message was in flight.
  MessageSink* sink = sinks_[to];
  if (sink == nullptr) {
    ++fstats_.crash_dropped;
    return;
  }
  sink->deliver(from, *payload);
}

std::uint64_t& Network::pair_counter(ProcessId from, ProcessId to) {
  return pair_index_[static_cast<std::size_t>(from) * sinks_.size() + to];
}

void Network::send(ProcessId from, ProcessId to, Payload payload) {
  DSM_REQUIRE(from < sinks_.size());
  DSM_REQUIRE(to < sinks_.size());
  DSM_REQUIRE(from != to);
  DSM_REQUIRE(payload != nullptr);
  // A null sink is a wiring bug — unless detach() has ever been used, in
  // which case it means the receiver is currently crashed.
  DSM_REQUIRE(sinks_[to] != nullptr || detach_used_);

  const std::uint64_t index = pair_counter(from, to)++;

  SimTime delay;
  std::optional<SimTime> forced;
  if (override_) forced = override_(from, to, *payload);
  if (forced) {
    delay = *forced;
  } else {
    delay = latency_->latency(from, to, index);
  }

  stats_.messages_sent += 1;
  stats_.bytes_sent += payload->size();
  stats_.max_latency_seen = std::max(stats_.max_latency_seen, delay);

  // Partition windows are evaluated at send time: a message launched before
  // the window opened is already "on the wire" and still arrives.
  if (fault_.severed(from, to, queue_->now())) {
    ++fstats_.partition_dropped;
    return;
  }

  const FaultPlan::Draw draw = fault_.draw(from, to, index);
  if (draw.dropped) {
    ++fstats_.dropped;
    return;
  }
  if (draw.duplicated) {
    ++fstats_.duplicated;
    // The duplicate takes an independent latency draw: it can arrive before
    // or after the original.  Both in-flight copies share one buffer.
    const SimTime dup_delay =
        forced ? *forced : latency_->latency(from, to, index ^ 0x8000000000000000ULL);
    queue_->schedule_after(dup_delay, [this, from, to, payload]() {
      deliver_now(from, to, payload);
    });
  }

  queue_->schedule_after(
      delay, [this, from, to, payload = std::move(payload)]() {
        deliver_now(from, to, payload);
      });
}

void Network::broadcast(ProcessId from, const Payload& payload) {
  for (ProcessId to = 0; to < sinks_.size(); ++to) {
    if (to != from) send(from, to, payload);
  }
}

}  // namespace dsm
