// optcm — deterministic discrete-event queue.
//
// Events fire in (time, insertion-sequence) order: ties at the same simulated
// instant resolve by scheduling order, never by container internals, so a
// run is a pure function of (workload, latency seed).

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "dsm/sim/sim_time.h"

namespace dsm {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  void schedule_at(SimTime at, Action fn);

  /// Schedule `fn` after a delay relative to now().
  void schedule_after(SimTime delay, Action fn);

  /// Current simulated time (the timestamp of the last fired event).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Fire the earliest event.  Returns false if the queue was empty.
  bool step();

  /// Fire events until the queue drains or `max_events` fired.  Returns the
  /// number of events fired.
  std::size_t run(std::size_t max_events = ~std::size_t{0});

  /// Fire events with timestamp <= horizon.  Returns events fired.
  std::size_t run_until(SimTime horizon);

  /// Timestamp of the earliest pending event, if any — the net event loop
  /// derives its poll timeout from this.
  [[nodiscard]] std::optional<SimTime> next_at() const;

  /// Advance now() to `t` without firing anything — how a wall-clock-driven
  /// loop reconciles simulated time with real time between poll wakeups.
  /// Call run_until(t) first; events already due before `t` keep their
  /// earlier timestamps, so now() never moves past a pending event.
  void advance_to(SimTime t);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dsm
