#include "dsm/sim/event_queue.h"

#include "dsm/common/contracts.h"

namespace dsm {

void EventQueue::schedule_at(SimTime at, Action fn) {
  DSM_REQUIRE(at >= now_);
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_after(SimTime delay, Action fn) {
  DSM_REQUIRE(delay <= kSimTimeMax - now_);
  schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the action handle (std::function copy) and pop first.  The
  // action itself runs after the pop so it may schedule new events freely.
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.at;
  e.fn();
  return true;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && step()) ++fired;
  return fired;
}

std::size_t EventQueue::run_until(SimTime horizon) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().at <= horizon && step()) ++fired;
  return fired;
}

std::optional<SimTime> EventQueue::next_at() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.top().at;
}

void EventQueue::advance_to(SimTime t) {
  if (!heap_.empty() && heap_.top().at < t) t = heap_.top().at;
  if (t > now_) now_ = t;
}

}  // namespace dsm
