// optcm — network latency models.
//
// The paper assumes only reliable asynchronous channels; *which* applies get
// delayed is purely a function of message arrival order, so the latency model
// is the experiment's independent variable.  All models are deterministic
// given their seed, and the per-message draw is keyed on
// (from, to, per-pair message index) so that two protocols sending the same
// logical message stream (e.g. OptP and ANBKH: one broadcast per write, in
// the same program order) observe *identical* arrival patterns — the delay
// comparison then isolates the protocols' enabling conditions.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dsm/common/rng.h"
#include "dsm/common/types.h"
#include "dsm/sim/sim_time.h"

namespace dsm {

/// Deterministic latency oracle: the delay of the k-th message ever sent on
/// the directed channel from→to.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  [[nodiscard]] virtual SimTime latency(ProcessId from, ProcessId to,
                                        std::uint64_t pair_index) const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Every message takes exactly `delay` (FIFO channels by construction).
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(SimTime delay) : delay_(delay) {}
  [[nodiscard]] SimTime latency(ProcessId, ProcessId, std::uint64_t) const override {
    return delay_;
  }
  [[nodiscard]] std::string describe() const override;

 private:
  SimTime delay_;
};

/// Uniform in [lo, hi] — reordering channels when hi > lo + message spacing.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi, std::uint64_t seed);
  [[nodiscard]] SimTime latency(ProcessId from, ProcessId to,
                                std::uint64_t pair_index) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  SimTime lo_, hi_;
  std::uint64_t seed_;
};

/// base + Exp(mean_extra): heavy-ish tail, the classic WAN stand-in.
class ExponentialLatency final : public LatencyModel {
 public:
  ExponentialLatency(SimTime base, double mean_extra, std::uint64_t seed);
  [[nodiscard]] SimTime latency(ProcessId from, ProcessId to,
                                std::uint64_t pair_index) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  SimTime base_;
  double mean_extra_;
  std::uint64_t seed_;
};

/// LogNormal(mu, sigma) microseconds — long tail, strong reordering.
class LogNormalLatency final : public LatencyModel {
 public:
  LogNormalLatency(double mu, double sigma, std::uint64_t seed);
  [[nodiscard]] SimTime latency(ProcessId from, ProcessId to,
                                std::uint64_t pair_index) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double mu_, sigma_;
  std::uint64_t seed_;
};

/// One slow directed link (from→to gets `slow`, everything else `fast`):
/// the minimal topology that manufactures false causality (paper Fig. 3:
/// p1→p3 is slow, so p3 sees p2's write before p1's).
class SlowLinkLatency final : public LatencyModel {
 public:
  SlowLinkLatency(ProcessId slow_from, ProcessId slow_to, SimTime slow,
                  SimTime fast);
  [[nodiscard]] SimTime latency(ProcessId from, ProcessId to,
                                std::uint64_t pair_index) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  ProcessId slow_from_, slow_to_;
  SimTime slow_, fast_;
};

/// Convenience factory selection used by benches/tests to sweep models.
enum class LatencyKind : std::uint8_t {
  kConstant,
  kUniform,
  kExponential,
  kLogNormal,
};

[[nodiscard]] const char* to_string(LatencyKind k) noexcept;

/// Builds a model with "comparable" scale across kinds: median latency near
/// `scale` microseconds, spread controlled by `spread` in [0, ∞) where 0 is
/// degenerate-constant and larger values reorder more aggressively.
[[nodiscard]] std::unique_ptr<LatencyModel> make_latency(LatencyKind kind,
                                                         SimTime scale,
                                                         double spread,
                                                         std::uint64_t seed);

}  // namespace dsm
