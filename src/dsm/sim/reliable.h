// optcm — reliable exactly-once channels over a faulty datagram network.
//
// Paper Section 3.1 assumes "reliable channels.  Each message sent by a
// process is eventually received exactly once and no spurious message can
// ever be delivered."  This substrate *builds* that assumption from a lossy,
// duplicating network (see fault.h) with a classic per-channel ARQ:
//
//   * every payload gets a per-(sender→receiver) sequence number and is kept
//     by the sender until acknowledged; a retransmission timer resends it
//     until the ACK lands (at-least-once);
//   * the receiver delivers a sequence number at most once — a compact
//     watermark-plus-set dedup — and (re-)ACKs every DATA frame it sees
//     (exactly-once upward);
//   * channels stay NON-FIFO on purpose: a fresh sequence number is
//     delivered upward immediately even if earlier ones are still missing.
//     The DSM protocols order applies themselves; imposing FIFO here would
//     silently hand ANBKH ordering it did not pay for.
//
// The retransmission timeout is ADAPTIVE per peer, after RFC 6298: smoothed
// RTT and RTT variance from ACK round-trips (SRTT ← 7/8·SRTT + 1/8·R,
// RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT − R|, RTO = SRTT + 4·RTTVAR clamped to
// [min_rto, max_rto]), Karn's rule (never sample a retransmitted packet),
// per-packet exponential backoff capped at max_rto, and a small
// DETERMINISTIC jitter (splitmix64 over (jitter_seed, self, peer, seq,
// attempt)) to break synchronized retransmission storms while preserving
// "same seed ⇒ byte-identical trace".  `config.rto` is the initial RTO
// before the first sample.
//
// Exhausting `max_retries` is a hard error: with restart-eventually crash
// plans and healing partitions every payload is eventually deliverable, so
// abandonment means the simulation (or its fault plan) is broken.  Install
// `on_abandon` to turn it into a callback instead (tests of the alarm path).
//
// Wire format: one byte frame type (DATA/ACK), varint sequence number, then
// the raw payload (DATA only).  ACKs are never retransmitted — a lost ACK
// just provokes one more retransmission, which the dedup absorbs.
//
// For crash/recovery the node checkpoints: snapshot() serializes sequence
// numbers, unacked payloads, RTT estimator state, and the receive dedup
// state; restore() reloads them on a FRESH node (same wiring) and
// immediately retransmits everything unacked.  Losing rx dedup state would
// break exactly-once (a retransmission of an already-delivered seq would be
// delivered again); losing tx next_seq would reuse sequence numbers that
// peers silently suppress.  See docs/FAULTS.md.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "dsm/codec/codec.h"
#include "dsm/common/transport.h"
#include "dsm/sim/event_queue.h"

namespace dsm {

struct ReliableStats {
  std::uint64_t data_sent = 0;        ///< first transmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t delivered = 0;        ///< payloads handed to the upper layer
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t abandoned = 0;        ///< gave up after max_retries (bug alarm)
  std::uint64_t rtt_samples = 0;      ///< ACKs that updated the RTT estimator
  std::uint64_t malformed_dropped = 0;  ///< frames this class never produced

  ReliableStats& operator+=(const ReliableStats& o) noexcept {
    data_sent += o.data_sent;
    retransmissions += o.retransmissions;
    acks_sent += o.acks_sent;
    delivered += o.delivered;
    duplicates_suppressed += o.duplicates_suppressed;
    abandoned += o.abandoned;
    rtt_samples += o.rtt_samples;
    malformed_dropped += o.malformed_dropped;
    return *this;
  }
};

/// ARQ tuning knobs.
struct ReliableConfig {
  SimTime rto = sim_ms(2);        ///< initial RTO (before the first RTT sample)
  SimTime min_rto = sim_us(500);  ///< lower clamp on the adaptive RTO
  SimTime max_rto = sim_ms(200);  ///< upper clamp, also the backoff cap
  std::size_t max_retries = 10'000;
  std::uint64_t jitter_seed = 0x1E77;  ///< deterministic retransmit jitter
  /// Called instead of aborting when a payload exhausts max_retries.  The
  /// default (unset) hard-fails via DSM_REQUIRE: silent message loss would
  /// invalidate every liveness claim downstream.
  std::function<void(ProcessId to, std::uint64_t seq)> on_abandon;
};

/// The reliable-channel endpoint of one process: ARQ sender and receiver in
/// one object, sitting between a lossy DatagramTransport and an upper
/// MessageSink.  The transport is the simulated Network in the simulator and
/// the TcpTransport in the multi-process runtime (where a send racing a
/// disconnect is dropped and this layer's retransmission repairs it over the
/// re-dialed connection).
///
/// Thread-safety: none — single-threaded by design.  Every method runs on
/// one dispatch context: the simulator's event loop, or the net event loop
/// (whose EventQueue is driven by wall-clock time); the threaded cluster
/// does not use this class (its mailboxes are lossless).
class ReliableNode final : public MessageSink {
 public:
  using Config = ReliableConfig;

  /// Registers itself as process `self`'s sink on `transport`.  `upper`
  /// receives deduplicated payloads exactly once each.
  ///
  /// \pre `queue`, `transport` and `upper` outlive this node (timers capture
  ///      an aliveness token, so destruction before pending timers fire is
  ///      safe, but the references themselves must stay valid while alive).
  /// \post this node owns `self`'s slot on the transport; constructing a
  ///       second sink for the same process is an error.
  ReliableNode(EventQueue& queue, DatagramTransport& transport, ProcessId self,
               MessageSink& upper, Config config = {});
  ~ReliableNode();

  ReliableNode(const ReliableNode&) = delete;
  ReliableNode& operator=(const ReliableNode&) = delete;

  // -- sending (the upper layer's Endpoint calls these) ---------------------

  /// Queues `payload` for exactly-once delivery to `to`.
  ///
  /// \pre `to` is a valid process id on the network and `to != self`.
  /// \post the payload has a fresh per-channel sequence number, a DATA
  ///       frame is in flight, and a retransmission timer is armed; the
  ///       payload is retained (by refcount, not copy) until the matching
  ///       ACK arrives.
  void send(ProcessId to, Payload payload);

  /// send() to every other process (the paper's broadcast primitive,
  /// footnote 5: fan-out unicast over reliable channels).  Every per-peer
  /// retransmission queue shares the one payload buffer.
  void broadcast(const Payload& payload);

  // -- MessageSink (frames arriving from the network) ------------------------

  /// Handles one raw frame from the network: DATA frames are ACKed and, if
  /// their sequence number is new, delivered upward; duplicate DATA is
  /// suppressed (and re-ACKed); ACK frames retire the tx entry and feed the
  /// RTT estimator (Karn's rule: only never-retransmitted packets sample).
  /// A frame this class never produced (bad type byte, truncated varint) is
  /// dropped and counted in stats().malformed_dropped — over real sockets a
  /// peer can say anything, so garbage must not be able to abort the node.
  void deliver(ProcessId from, std::span<const std::uint8_t> bytes) override;

  // -- checkpoint / restore --------------------------------------------------

  /// Serializes tx sequence numbers + unacked payloads, the RTT estimator,
  /// and the rx dedup state (see the header comment for why each part is
  /// load-bearing).  Pure observer: the node is unchanged.
  void snapshot(ByteWriter& w) const;

  /// Restores a snapshot onto this (freshly constructed) node and
  /// retransmits every unacked payload.  Returns false on malformed input.
  ///
  /// \pre *this was default-wired for the same (queue, network, self,
  ///      upper) topology and has not sent or received anything yet.
  /// \post on success, every unacked payload is back in flight with a
  ///       fresh timer; on failure the node must be discarded.
  [[nodiscard]] bool restore(ByteReader& r);

  /// Advance every per-peer tx sequence counter by `skip` — an epoch gap.
  /// The durable-boot path restores an ARQ snapshot that may predate the
  /// crash by up to one mutation, then re-executes the lost mutation; without
  /// the gap the re-broadcast would reuse a sequence number a peer already
  /// consumed for the ORIGINAL transmission, and the peer's dedup would
  /// silently suppress a different payload under the same seq.
  void skip_tx_sequences(std::uint64_t skip) noexcept;

  /// Counters since construction/restore (restore does not reset them).
  [[nodiscard]] const ReliableStats& stats() const noexcept { return stats_; }

  /// Current adaptive RTO toward `to` (initial config.rto before a sample).
  /// \pre `to` is a valid process id.
  [[nodiscard]] SimTime current_rto(ProcessId to) const;

  /// True when every sent payload has been acknowledged.
  [[nodiscard]] bool quiescent() const noexcept;

  /// quiescent(), ignoring channels to peers flagged in `excluded`
  /// (indexed by peer id; short vectors exclude nothing beyond their size).
  /// The process tier flags peers behind an injected BLOCKED link: their
  /// backlog is undeliverable until the nemesis heals the partition, and a
  /// quiescence barrier must not deadlock against the very fault that
  /// prevents the drain — "as quiescent as the injected faults allow".
  [[nodiscard]] bool quiescent_except(
      const std::vector<bool>& excluded) const noexcept;

 private:
  enum class FrameType : std::uint8_t { kData = 0, kAck = 1 };

  struct TxEntry {
    Payload payload;            ///< shared with broadcast siblings
    SimTime first_sent = 0;     ///< for the RTT sample
    bool retransmitted = false; ///< Karn: retransmitted packets never sample
  };
  struct PeerTx {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, TxEntry> unacked;  // seq -> entry
    // RFC 6298 estimator (microseconds, as doubles for the EWMAs).
    bool have_rtt = false;
    double srtt = 0.0;
    double rttvar = 0.0;
    SimTime rto = 0;  ///< current RTO; initialized from config
  };
  struct PeerRx {
    std::uint64_t watermark = 0;            ///< all seq <= watermark seen
    std::set<std::uint64_t> seen_above;     ///< seen seqs > watermark
    [[nodiscard]] bool saw(std::uint64_t seq) const {
      return seq <= watermark || seen_above.count(seq) != 0;
    }
    void mark(std::uint64_t seq) {
      seen_above.insert(seq);
      while (seen_above.count(watermark + 1) != 0) {
        seen_above.erase(++watermark);
      }
    }
  };

  void transmit(ProcessId to, std::uint64_t seq,
                const std::vector<std::uint8_t>& payload);
  void arm_timer(ProcessId to, std::uint64_t seq, std::size_t attempt,
                 SimTime interval);
  void on_ack(ProcessId from, std::uint64_t seq);
  void sample_rtt(PeerTx& peer, SimTime rtt);
  [[nodiscard]] SimTime clamp_rto(double rto_us) const;
  [[nodiscard]] SimTime jitter(ProcessId to, std::uint64_t seq,
                               std::size_t attempt, SimTime interval) const;

  static std::vector<std::uint8_t> encode_frame(FrameType type,
                                                std::uint64_t seq,
                                                std::span<const std::uint8_t> payload);

  EventQueue* queue_;
  DatagramTransport* network_;
  ProcessId self_;
  MessageSink* upper_;
  Config config_;
  std::vector<PeerTx> tx_;
  std::vector<PeerRx> rx_;
  ReliableStats stats_;
  /// Outstanding timer lambdas check this token: when the node is destroyed
  /// (crash path) the events already in the queue become no-ops instead of
  /// touching freed memory.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace dsm
