// optcm — reliable exactly-once channels over a faulty datagram network.
//
// Paper Section 3.1 assumes "reliable channels.  Each message sent by a
// process is eventually received exactly once and no spurious message can
// ever be delivered."  This substrate *builds* that assumption from a lossy,
// duplicating network (see fault.h) with a classic per-channel ARQ:
//
//   * every payload gets a per-(sender→receiver) sequence number and is kept
//     by the sender until acknowledged; a retransmission timer resends it
//     every `rto` until the ACK lands (at-least-once);
//   * the receiver delivers a sequence number at most once — a compact
//     watermark-plus-set dedup — and (re-)ACKs every DATA frame it sees
//     (exactly-once upward);
//   * channels stay NON-FIFO on purpose: a fresh sequence number is
//     delivered upward immediately even if earlier ones are still missing.
//     The DSM protocols order applies themselves; imposing FIFO here would
//     silently hand ANBKH ordering it did not pay for.
//
// Wire format: one byte frame type (DATA/ACK), varint sequence number, then
// the raw payload (DATA only).  ACKs are never retransmitted — a lost ACK
// just provokes one more retransmission, which the dedup absorbs.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "dsm/sim/network.h"

namespace dsm {

struct ReliableStats {
  std::uint64_t data_sent = 0;        ///< first transmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t delivered = 0;        ///< payloads handed to the upper layer
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t abandoned = 0;        ///< gave up after max_retries (bug alarm)
};

/// ARQ tuning knobs.
struct ReliableConfig {
  SimTime rto = sim_ms(2);
  std::size_t max_retries = 10'000;
};

class ReliableNode final : public MessageSink {
 public:
  using Config = ReliableConfig;

  /// Registers itself as process `self`'s sink on `network`.  `upper`
  /// receives deduplicated payloads exactly once each.
  ReliableNode(EventQueue& queue, Network& network, ProcessId self,
               MessageSink& upper, Config config = {});

  // -- sending (the upper layer's Endpoint calls these) ---------------------
  void send(ProcessId to, std::vector<std::uint8_t> payload);
  void broadcast(const std::vector<std::uint8_t>& payload);

  // -- MessageSink (frames arriving from the network) ------------------------
  void deliver(ProcessId from, std::span<const std::uint8_t> bytes) override;

  [[nodiscard]] const ReliableStats& stats() const noexcept { return stats_; }

  /// True when every sent payload has been acknowledged.
  [[nodiscard]] bool quiescent() const noexcept;

 private:
  enum class FrameType : std::uint8_t { kData = 0, kAck = 1 };

  struct PeerTx {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, std::vector<std::uint8_t>> unacked;  // seq -> payload
  };
  struct PeerRx {
    std::uint64_t watermark = 0;            ///< all seq <= watermark seen
    std::set<std::uint64_t> seen_above;     ///< seen seqs > watermark
    [[nodiscard]] bool saw(std::uint64_t seq) const {
      return seq <= watermark || seen_above.count(seq) != 0;
    }
    void mark(std::uint64_t seq) {
      seen_above.insert(seq);
      while (seen_above.count(watermark + 1) != 0) {
        seen_above.erase(++watermark);
      }
    }
  };

  void transmit(ProcessId to, std::uint64_t seq,
                const std::vector<std::uint8_t>& payload);
  void arm_timer(ProcessId to, std::uint64_t seq, std::size_t attempt);

  static std::vector<std::uint8_t> encode_frame(FrameType type,
                                                std::uint64_t seq,
                                                std::span<const std::uint8_t> payload);

  EventQueue* queue_;
  Network* network_;
  ProcessId self_;
  MessageSink* upper_;
  Config config_;
  std::vector<PeerTx> tx_;
  std::vector<PeerRx> rx_;
  ReliableStats stats_;
};

}  // namespace dsm
